package query

import "fmt"

// ShardedQuerier composes the k piece queriers of a sharded build into
// one querier over the global domain: estimates route to the single
// owning piece, range sums split at the shard boundaries and sum the
// pieces' partials. It is the query-side twin of probsyn.BuildSharded's
// Pieces — the cluster's batch endpoint assembles one per sharded key
// (fetching remote pieces once) and then answers every op of the batch
// locally at the usual querier speed.
type ShardedQuerier struct {
	pieces []Querier
	bounds []int // k+1 global boundaries; piece s covers [bounds[s], bounds[s+1])
}

// NewSharded builds the composite querier. bounds must have
// len(pieces)+1 strictly increasing entries starting at 0 — the global
// item boundaries the pieces tile (probsyn.ShardBounds of the build).
func NewSharded(pieces []Querier, bounds []int) (*ShardedQuerier, error) {
	if len(pieces) == 0 {
		return nil, fmt.Errorf("query: sharded querier needs at least one piece")
	}
	if len(bounds) != len(pieces)+1 {
		return nil, fmt.Errorf("query: %d boundaries for %d pieces, want %d", len(bounds), len(pieces), len(pieces)+1)
	}
	if bounds[0] != 0 {
		return nil, fmt.Errorf("query: shard boundaries start at %d, want 0", bounds[0])
	}
	for s := 0; s < len(pieces); s++ {
		if bounds[s+1] <= bounds[s] {
			return nil, fmt.Errorf("query: shard boundaries %v not strictly increasing", bounds)
		}
		if pieces[s] == nil {
			return nil, fmt.Errorf("query: piece %d is nil", s)
		}
	}
	return &ShardedQuerier{pieces: pieces, bounds: bounds}, nil
}

// Domain returns the global domain size the pieces tile.
func (q *ShardedQuerier) Domain() int { return q.bounds[len(q.pieces)] }

// shardOf returns the piece owning global item i (i must be in domain).
func (q *ShardedQuerier) shardOf(i int) int {
	// Binary search over the k+1 boundaries.
	lo, hi := 0, len(q.pieces)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if q.bounds[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Estimate routes to the owning piece (out-of-domain items clamp, as in
// the concrete queriers' contract).
func (q *ShardedQuerier) Estimate(i int) float64 {
	n := q.Domain()
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	s := q.shardOf(i)
	return q.pieces[s].Estimate(i - q.bounds[s])
}

// RangeSum splits the inclusive global range [lo, hi] at the shard
// boundaries and sums the pieces' partial sums; out-of-domain ends are
// clamped.
func (q *ShardedQuerier) RangeSum(lo, hi int) float64 {
	n := q.Domain()
	lo, hi = max(lo, 0), min(hi, n-1)
	if lo > hi {
		return 0
	}
	sum := 0.0
	for s := q.shardOf(lo); s < len(q.pieces) && q.bounds[s] <= hi; s++ {
		llo := max(lo, q.bounds[s]) - q.bounds[s]
		lhi := min(hi, q.bounds[s+1]-1) - q.bounds[s]
		sum += q.pieces[s].RangeSum(llo, lhi)
	}
	return sum
}
