package query

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
	"probsyn/internal/shard"
)

// Build per-shard histograms over slices of one dataset and check the
// composite querier agrees with a histogram over the whole data at
// every point and range.
func TestShardedQuerierMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	vp := ptest.RandomValuePDF(rng, 29, 3)
	const k = 3
	bounds := shard.Bounds(vp.N, k)
	pieces := make([]Querier, k)
	hists := make([]*hist.Histogram, k)
	for s := 0; s < k; s++ {
		svp := &pdata.ValuePDF{N: bounds[s+1] - bounds[s], Items: vp.Items[bounds[s]:bounds[s+1]]}
		h, err := hist.Optimal(hist.NewSSEValue(svp), 3)
		if err != nil {
			t.Fatal(err)
		}
		hists[s] = h
		pieces[s] = Compile(h)
	}
	q, err := NewSharded(pieces, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if q.Domain() != vp.N {
		t.Fatalf("Domain() = %d, want %d", q.Domain(), vp.N)
	}
	for i := 0; i < vp.N; i++ {
		s := 0
		for bounds[s+1] <= i {
			s++
		}
		if got, want := q.Estimate(i), hists[s].Estimate(i-bounds[s]); got != want {
			t.Fatalf("Estimate(%d) = %v, piece says %v", i, got, want)
		}
	}
	for _, r := range [][2]int{{0, 28}, {0, 0}, {9, 10}, {5, 23}, {-4, 100}, {28, 28}} {
		var want float64
		for i := max(r[0], 0); i <= min(r[1], vp.N-1); i++ {
			want += q.Estimate(i)
		}
		if got := q.RangeSum(r[0], r[1]); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("RangeSum(%d, %d) = %v, pointwise %v", r[0], r[1], got, want)
		}
	}
	if got := q.RangeSum(7, 3); got != 0 {
		t.Fatalf("empty range sums to %v", got)
	}
}

func TestShardedQuerierRejectsBadInputs(t *testing.T) {
	q := Querier(nil)
	if _, err := NewSharded(nil, []int{0}); err == nil {
		t.Fatal("no pieces accepted")
	}
	if _, err := NewSharded([]Querier{q, q}, []int{0, 4}); err == nil {
		t.Fatal("short boundary list accepted")
	}
	if _, err := NewSharded([]Querier{q}, []int{1, 4}); err == nil {
		t.Fatal("nonzero first boundary accepted")
	}
	if _, err := NewSharded([]Querier{q}, []int{0, 0}); err == nil {
		t.Fatal("empty shard accepted")
	}
	if _, err := NewSharded([]Querier{nil}, []int{0, 4}); err == nil {
		t.Fatal("nil piece accepted")
	}
}
