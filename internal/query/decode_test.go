package query

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// decodeBoth runs DecodeBatch and plain json.Unmarshal (into a fresh
// request) on the same input and fails unless they agree on both the
// result and the error text. Returns the DecodeBatch outcome.
func decodeBoth(t testing.TB, data []byte) (BatchRequest, error) {
	t.Helper()
	var fast BatchRequest
	fastErr := DecodeBatch(data, &fast)
	var ref BatchRequest
	refErr := json.Unmarshal(data, &ref)
	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("DecodeBatch(%q) err = %v, json.Unmarshal err = %v", data, fastErr, refErr)
	}
	if fastErr != nil && fastErr.Error() != refErr.Error() {
		t.Fatalf("DecodeBatch(%q) err = %q, json.Unmarshal err = %q", data, fastErr, refErr)
	}
	if fastErr == nil && !reflect.DeepEqual(normOps(fast.Ops), normOps(ref.Ops)) {
		t.Fatalf("DecodeBatch(%q) = %+v, json.Unmarshal = %+v", data, fast.Ops, ref.Ops)
	}
	return fast, fastErr
}

// normOps maps empty to nil so a reused-capacity []Op{} compares equal
// to the fresh decoder's nil.
func normOps(ops []Op) []Op {
	if len(ops) == 0 {
		return nil
	}
	return ops
}

func TestDecodeBatchMatchesStdlibRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	datasets := []string{"ds", "live", "traffic-2024", "x"}
	families := []string{"histogram", "wavelet", "bogus"}
	metrics := []string{"SSE", "SAE", "SSRE", "SARE"}
	opNames := []string{OpEstimate, OpRangeSum, "mystery"}
	for trial := 0; trial < 300; trial++ {
		var req BatchRequest
		for i := rng.Intn(20); i > 0; i-- {
			op := Op{
				BatchKey: BatchKey{
					Dataset: datasets[rng.Intn(len(datasets))],
					Family:  families[rng.Intn(len(families))],
					Metric:  metrics[rng.Intn(len(metrics))],
					Budget:  rng.Intn(40) - 4,
				},
				Op: opNames[rng.Intn(len(opNames))],
				I:  rng.Intn(600) - 50,
				Lo: rng.Intn(600) - 50,
				Hi: rng.Intn(600) - 50,
			}
			if rng.Intn(3) == 0 {
				op.C = float64(rng.Intn(1000)) / 256
			}
			req.Ops = append(req.Ops, op)
		}
		data, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeBoth(t, data)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !reflect.DeepEqual(normOps(got.Ops), normOps(req.Ops)) {
			t.Fatalf("trial %d: round trip mismatch:\n got %+v\nwant %+v", trial, got.Ops, req.Ops)
		}
	}
}

// TestDecodeBatchMatchesStdlibCorpus pins equivalence on the inputs
// the scanner punts on: escapes, case-variant and unknown members,
// number edge cases, structural junk. Each must produce exactly the
// stdlib's result or exactly the stdlib's error.
func TestDecodeBatchMatchesStdlibCorpus(t *testing.T) {
	corpus := []string{
		`{}`,
		`  {  }  `,
		`{"ops":[]}`,
		`{"ops":null}`,
		`{"ops":[{}]}`,
		"\t{\n\"ops\" : [ { \"dataset\" : \"ds\" , \"i\" : 3 } ] }\r\n",
		`{"ops":[{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"op":"estimate","i":42}]}`,
		`{"ops":[{"dataset":"ds","budget":8,"op":"rangesum","lo":-3,"hi":17,"c":0.5}]}`,
		`{"ops":[{"c":1e3},{"c":0.25},{"c":2.5e-2},{"c":-0.125}]}`,
		`{"ops":[{"dataset":"ds","family":"wavelet","metric":"SAE","budget":8,"q":16,"op":"estimate","i":1}]}`,
		`{"ops":[{"q":0},{"q":-4},{"q":2.5}]}`, // float into q: stdlib error
		`{"ops":[{"i":0},{"i":-0},{"budget":1000000000}]}`,
		`{"Ops":[{"i":1}]}`,                    // case-variant top-level member
		`{"ops":[{"Dataset":"ds"}]}`,           // case-variant op member
		`{"ops":[{"dataset":"\u0064s"}]}`,      // \u escape
		`{"ops":[{"dataset":"a\"b"}]}`,         // escaped quote
		`{"ops":[{"dataset":"π"}]}`,            // non-ASCII
		`{"ops":[{"unknown":7}]}`,              // unknown member (stdlib ignores)
		`{"ops":[{"i":1,"i":2}]}`,              // duplicate member, last wins
		`{"ops":[{"i":1}],"ops":[{"i":2}]}`,    // duplicate top-level member
		`{"ops":[{"i":1}],"extra":true}`,       // extra top-level member
		`{"ops":[{"i":2.5}]}`,                  // float into int: stdlib error
		`{"ops":[{"i":1e2}]}`,                  // exponent into int: stdlib error
		`{"ops":[{"i":01}]}`,                   // leading zero: invalid JSON
		`{"ops":[{"c":.5}]}`,                   // bare fraction: invalid JSON
		`{"ops":[{"c":1.}]}`,                   // trailing dot: invalid JSON
		`{"ops":[{"c":1e}]}`,                   // empty exponent: invalid JSON
		`{"ops":[{"c":1e999}]}`,                // out of range: stdlib error
		`{"ops":[{"i":99999999999999999999}]}`, // int overflow: stdlib error
		`{"ops":[{"dataset":42}]}`,             // number into string
		`{"ops":[{"i":"3"}]}`,                  // string into int
		`{"ops":{"i":1}}`,                      // object where array expected
		`[{"i":1}]`,                            // array at top level
		`{"ops":[{"i":1}]}trailing`,            // trailing garbage
		`{"ops":[{"i":1}]} `,                   // trailing whitespace only
		`{nope`, `{"ops":[`, `{"ops":[{]}`, ``, `null`, `true`,
	}
	for _, in := range corpus {
		t.Run(in, func(t *testing.T) { decodeBoth(t, []byte(in)) })
	}
}

// FuzzDecodeBatch differentially fuzzes the fast scanner against
// encoding/json: any input where they disagree — result or error text —
// is a bug in the scanner's fallback discipline.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(`{"ops":[{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"op":"estimate","i":42}]}`)
	f.Add(`{"ops":[{"dataset":"ds","c":2.5e-2,"lo":-3}]}`)
	f.Add(`{"ops":[{}]}`)
	f.Fuzz(func(t *testing.T, in string) { decodeBoth(t, []byte(in)) })
}

// TestDecodeBatchClearsPooledOps is the pooled-reuse regression test:
// encoding/json decodes slice elements in place without zeroing fields
// the JSON omits, so a request decoded into reused capacity must not
// inherit field values from the previous request — on either path.
func TestDecodeBatchClearsPooledOps(t *testing.T) {
	full := []byte(`{"ops":[{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"c":0.5,"q":4,"op":"rangesum","i":9,"lo":3,"hi":7}]}`)
	sparseFast := []byte(`{"ops":[{"op":"estimate"}]}`)
	sparseFallback := []byte(`{"ops":[{"op":"estimate","unknown":1}]}`) // unknown member forces the stdlib path
	for name, sparse := range map[string][]byte{"fast": sparseFast, "fallback": sparseFallback} {
		var req BatchRequest
		if err := DecodeBatch(full, &req); err != nil {
			t.Fatal(err)
		}
		if err := DecodeBatch(sparse, &req); err != nil {
			t.Fatal(err)
		}
		want := Op{Op: OpEstimate}
		if len(req.Ops) != 1 || req.Ops[0] != want {
			t.Fatalf("%s path: pooled reuse leaked fields: got %+v, want %+v", name, req.Ops[0], want)
		}
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	var req BatchRequest
	for i := 0; i < 100; i++ {
		family := "histogram"
		if i%2 == 1 {
			family = "wavelet"
		}
		op := Op{
			BatchKey: BatchKey{Dataset: "ds", Family: family, Metric: "SSE", Budget: 8},
			Op:       OpEstimate, I: i,
		}
		if i%4 >= 2 {
			op.Op = OpRangeSum
			op.Lo, op.Hi = i, i+64
		}
		req.Ops = append(req.Ops, op)
	}
	body, err := json.Marshal(&req)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fast", func(b *testing.B) {
		var dst BatchRequest
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := DecodeBatch(body, &dst); err != nil {
				b.Fatal(err)
			}
		}
		if len(dst.Ops) != 100 {
			b.Fatal("bad decode")
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		var dst BatchRequest
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst.Ops = dst.Ops[:0]
			if err := json.Unmarshal(body, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Guard that the canonical wire shape really takes the fast path: if a
// scanner regression silently diverted it to the stdlib, the decode
// would still be correct but ~10x slower and hundreds of allocs worse —
// invisible to every equivalence test above.
func TestDecodeBatchFastPathTaken(t *testing.T) {
	canonical := []byte(`{"ops":[{"dataset":"ds","family":"wavelet","metric":"SSE","budget":8,"op":"estimate","i":3},` +
		`{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"op":"rangesum","lo":0,"hi":9}]}`)
	var s batchScanner
	var req BatchRequest
	s.data = canonical
	if !s.scanBatch(&req) {
		t.Fatalf("canonical wire shape fell off the fast path")
	}
	if fmt.Sprintf("%+v", req.Ops[1]) != fmt.Sprintf("%+v", Op{
		BatchKey: BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 8},
		Op:       OpRangeSum, Lo: 0, Hi: 9,
	}) {
		t.Fatalf("fast path mis-parsed: %+v", req.Ops[1])
	}
}
