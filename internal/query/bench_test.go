package query

import (
	"math/rand"
	"sort"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/wavelet"
)

// benchHistogram builds a deterministic B-bucket histogram over [0, n).
func benchHistogram(n, b int) *hist.Histogram {
	rng := rand.New(rand.NewSource(7))
	h := &hist.Histogram{N: n}
	width := n / b
	for k := 0; k < b; k++ {
		end := n - 1
		if k+1 < b {
			end = (k+1)*width - 1
		}
		h.Buckets = append(h.Buckets, hist.Bucket{Start: k * width, End: end, Rep: rng.Float64() * 10})
	}
	return h
}

// benchWavelet builds a deterministic B-coefficient wavelet synopsis over
// a power-of-two domain n.
func benchWavelet(n, b int) *wavelet.Synopsis {
	rng := rand.New(rand.NewSource(8))
	keep := map[int]bool{0: true}
	for len(keep) < b {
		keep[rng.Intn(n)] = true
	}
	var idx []int
	for i := range keep {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	s := &wavelet.Synopsis{N: n, Indices: idx, Values: make([]float64, len(idx))}
	for k := range s.Values {
		s.Values[k] = rng.Float64()*4 - 2
	}
	return s
}

// BenchmarkServeEstimate measures the point-estimate hot path: compiled
// querier vs the uncompiled Synopsis method, both families. The compiled
// sub-benchmarks are the serve path and must report 0 allocs/op.
func BenchmarkServeEstimate(b *testing.B) {
	h := benchHistogram(4096, 64)
	w := benchWavelet(4096, 64)
	hq := CompileHistogram(h)
	wq := CompileWavelet(w)
	sink := 0.0
	b.Run("histogram/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += hq.Estimate(i & 4095)
		}
	})
	b.Run("histogram/uncompiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += h.Estimate(i & 4095)
		}
	})
	b.Run("wavelet/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += wq.Estimate(i & 4095)
		}
	})
	b.Run("wavelet/uncompiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += w.Estimate(i & 4095)
		}
	})
	benchSink = sink
}

// BenchmarkServeRangeSum measures the range-sum hot path. The acceptance
// bar for this PR: wavelet/compiled at n=4096, B=64 must be at least 5x
// faster than wavelet/uncompiled (the O(B) coefficient scan).
func BenchmarkServeRangeSum(b *testing.B) {
	h := benchHistogram(4096, 64)
	w := benchWavelet(4096, 64)
	hq := CompileHistogram(h)
	wq := CompileWavelet(w)
	sink := 0.0
	b.Run("histogram/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := i & 2047
			sink += hq.RangeSum(lo, lo+1024)
		}
	})
	b.Run("histogram/uncompiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := i & 2047
			sink += h.RangeSum(lo, lo+1024)
		}
	})
	b.Run("wavelet/compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := i & 2047
			sink += wq.RangeSum(lo, lo+1024)
		}
	})
	b.Run("wavelet/uncompiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := i & 2047
			sink += w.RangeSum(lo, lo+1024)
		}
	})
	benchSink = sink
}

// BenchmarkEvalBatch measures the batch evaluator over a pre-resolved
// querier: the per-op overhead the /v1/query handler adds on top of the
// querier itself.
func BenchmarkEvalBatch(b *testing.B) {
	h := benchHistogram(4096, 64)
	q := CompileHistogram(h)
	key := BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 64}
	req := &BatchRequest{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			req.Ops = append(req.Ops, Op{BatchKey: key, Op: OpEstimate, I: rng.Intn(4096)})
		} else {
			lo := rng.Intn(2048)
			req.Ops = append(req.Ops, Op{BatchKey: key, Op: OpRangeSum, Lo: lo, Hi: lo + rng.Intn(2048)})
		}
	}
	resolve := func(BatchKey) (Querier, int, *OpError) { return q, h.N, nil }
	resp := &BatchResponse{Results: make([]OpResult, 0, len(req.Ops))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp.Results = resp.Results[:0]
		EvalBatch(req, resolve, resp)
	}
}

var benchSink float64
