// The batch protocol: one request carrying many heterogeneous
// estimate/range-sum operations against one or many cataloged synopses,
// answered in order. POST /v1/query (internal/server) and psyn -query
// (cmd/psyn) both evaluate batches through EvalBatch and serialize
// through EncodeResponse, so a served response body and an offline one
// over the same catalog are byte-identical.
package query

import (
	"encoding/json"
	"fmt"
	"io"
)

// Batch protocol limits, shared by every evaluator so offline and served
// batches accept exactly the same requests.
const (
	// MaxBatchOps bounds the operations in one batch: enough to amortize
	// per-request overhead thousands of times over, small enough that a
	// hostile batch cannot pin a handler for seconds.
	MaxBatchOps = 1 << 14
)

// BatchKey names the synopsis an operation queries — the wire twin of
// catalog.Key (the catalog package depends on this one, so the key is
// mirrored rather than imported).
type BatchKey struct {
	Dataset string  `json:"dataset"`
	Family  string  `json:"family"`
	Metric  string  `json:"metric"`
	Budget  int     `json:"budget"`
	C       float64 `json:"c,omitempty"`
	// Q selects a quantized (approximate restricted DP) wavelet build;
	// 0 queries the exact synopsis. Exact and quantized entries coexist
	// under distinct catalog keys, so the querying side must say which.
	Q int `json:"q,omitempty"`
	// Shards queries a k-way sharded build through its distributed
	// pieces: range sums split at shard boundaries and sum the pieces'
	// partials, estimates route to the single owning piece. 0 queries
	// the ordinary unsharded synopsis.
	Shards int `json:"shards,omitempty"`
}

// The two operation kinds.
const (
	OpEstimate = "estimate"
	OpRangeSum = "rangesum"
)

// Op is one operation of a batch: which synopsis to query (the embedded
// key) and what to ask it. Estimate uses I; rangesum uses Lo and Hi.
type Op struct {
	BatchKey
	Op string `json:"op"`
	I  int    `json:"i,omitempty"`
	Lo int    `json:"lo,omitempty"`
	Hi int    `json:"hi,omitempty"`
}

// BatchRequest is the POST /v1/query (and psyn -query) body.
type BatchRequest struct {
	Ops []Op `json:"ops"`
}

// OpError is a per-operation failure: the same stable codes the single
// query endpoints use (bad_request, not_found).
type OpError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// OpResult answers one operation: the value, or the error that kept it
// from being answered (Value is meaningless when Err is set). One failed
// operation never fails the batch — results stay index-aligned with the
// request's ops.
type OpResult struct {
	Value float64  `json:"value"`
	Err   *OpError `json:"error,omitempty"`
}

// BatchResponse answers a batch, one result per op in request order.
type BatchResponse struct {
	Results []OpResult `json:"results"`
}

// Resolver maps a batch key to the compiled querier that answers it plus
// the synopsis's queryable domain size, or an OpError (typically
// not_found, or bad_request for a malformed key). EvalBatch consults it
// once per distinct key in the batch, so a resolver may do real work
// (a catalog lookup under a lock, a file read) per key without it
// multiplying across a large batch.
type Resolver func(k BatchKey) (Querier, int, *OpError)

// resolvedKey caches one resolver answer within a batch. A plain slice
// with linear scan: batches target "one or many" keys, almost always a
// handful, and a slice of a few entries beats a map at that size while
// allocating nothing per lookup.
type resolvedKey struct {
	key    BatchKey
	q      Querier
	domain int
	err    *OpError
}

// EvalBatch answers every operation of the request in order, appending
// to resp.Results (callers reuse pooled responses by truncating first).
// Key resolution is amortized: each distinct key in the batch is
// resolved exactly once, successes and failures both cached, so a batch
// of thousands of ops against one synopsis performs one lookup. The
// per-op validation mirrors the single GET endpoints: estimates reject
// out-of-domain items, range sums reject inverted or fully-out-of-domain
// ranges and clamp partially overlapping ones.
func EvalBatch(req *BatchRequest, resolve Resolver, resp *BatchResponse) {
	if cap(resp.Results)-len(resp.Results) < len(req.Ops) {
		grown := make([]OpResult, len(resp.Results), len(resp.Results)+len(req.Ops))
		copy(grown, resp.Results)
		resp.Results = grown
	}
	var cache []resolvedKey
	for i := range req.Ops {
		op := &req.Ops[i]
		var rk *resolvedKey
		for j := range cache {
			if cache[j].key == op.BatchKey {
				rk = &cache[j]
				break
			}
		}
		if rk == nil {
			q, domain, err := resolve(op.BatchKey)
			cache = append(cache, resolvedKey{key: op.BatchKey, q: q, domain: domain, err: err})
			rk = &cache[len(cache)-1]
		}
		if rk.err != nil {
			resp.Results = append(resp.Results, OpResult{Err: rk.err})
			continue
		}
		resp.Results = append(resp.Results, evalOp(op, rk))
	}
}

// evalOp answers one operation against its resolved querier.
func evalOp(op *Op, rk *resolvedKey) OpResult {
	switch op.Op {
	case OpEstimate:
		if op.I < 0 || op.I >= rk.domain {
			return opErrorf("bad_request", "item %d outside domain [0, %d)", op.I, rk.domain)
		}
		return OpResult{Value: rk.q.Estimate(op.I)}
	case OpRangeSum:
		if op.Lo > op.Hi {
			return opErrorf("bad_request", "empty range [%d, %d]", op.Lo, op.Hi)
		}
		if op.Hi < 0 || op.Lo >= rk.domain {
			return opErrorf("bad_request", "range [%d, %d] outside domain [0, %d)", op.Lo, op.Hi, rk.domain)
		}
		return OpResult{Value: rk.q.RangeSum(op.Lo, op.Hi)}
	default:
		return opErrorf("bad_request", "unknown op %q (want %q or %q)", op.Op, OpEstimate, OpRangeSum)
	}
}

func opErrorf(code, format string, args ...any) OpResult {
	return OpResult{Err: &OpError{Code: code, Message: fmt.Sprintf(format, args...)}}
}

// Validate rejects batches no evaluator should attempt: empty (almost
// certainly a malformed body) or beyond the shared op bound.
func (r *BatchRequest) Validate() error {
	if len(r.Ops) == 0 {
		return fmt.Errorf("query batch carries no ops")
	}
	if len(r.Ops) > MaxBatchOps {
		return fmt.Errorf("query batch carries %d ops, limit %d", len(r.Ops), MaxBatchOps)
	}
	return nil
}

// EncodeResponse writes the canonical serialization of a batch response:
// compact JSON with a trailing newline, the exact bytes POST /v1/query
// puts on the wire — psyn -query writes the same bytes so the two are
// cmp-identical.
func EncodeResponse(w io.Writer, resp *BatchResponse) error {
	return json.NewEncoder(w).Encode(resp)
}
