package query

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/wavelet"
)

// randHistogram builds a random but Validate()-clean histogram: random
// bucket boundaries over a random domain, representatives spanning
// negative, zero, and positive values so sign-sensitive rounding paths
// are exercised.
func randHistogram(rng *rand.Rand) *hist.Histogram {
	n := 1 + rng.Intn(300)
	b := 1 + rng.Intn(n)
	starts := map[int]bool{0: true}
	for len(starts) < b {
		starts[rng.Intn(n)] = true
	}
	var sorted []int
	for s := range starts {
		sorted = append(sorted, s)
	}
	sort.Ints(sorted)
	h := &hist.Histogram{N: n}
	for k, s := range sorted {
		end := n - 1
		if k+1 < len(sorted) {
			end = sorted[k+1] - 1
		}
		rep := (rng.Float64() - 0.5) * 20
		if rng.Intn(8) == 0 {
			rep = 0
		}
		h.Buckets = append(h.Buckets, hist.Bucket{Start: s, End: end, Rep: rep})
	}
	return h
}

// randWavelet builds a random wavelet synopsis: a random subset of
// coefficient indices (root sometimes retained, sometimes not) with
// values spanning signs and magnitudes.
func randWavelet(rng *rand.Rand) *wavelet.Synopsis {
	n := 1 << (1 + rng.Intn(9)) // 2..512
	b := 1 + rng.Intn(n)
	keep := map[int]bool{}
	for len(keep) < b {
		keep[rng.Intn(n)] = true
	}
	var idx []int
	for i := range keep {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	s := &wavelet.Synopsis{N: n, Indices: idx, Values: make([]float64, len(idx))}
	for k := range s.Values {
		v := (rng.Float64() - 0.5) * 10
		if rng.Intn(8) == 0 {
			v = 0
		}
		s.Values[k] = v
	}
	return s
}

// bitEqual is the acceptance predicate: the same float64 bits, so even
// a +0.0 vs -0.0 drift between the compiled and reference paths fails.
func bitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestCompiledHistogramBitIdentical: over random histograms and random
// (in-domain, out-of-domain, clamped, inverted) queries, the compiled
// querier returns the same bits as the Histogram methods.
func TestCompiledHistogramBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		h := randHistogram(rng)
		if err := h.Validate(); err != nil {
			t.Fatalf("trial %d: bad fixture: %v", trial, err)
		}
		q := CompileHistogram(h)
		n := h.N
		for qi := 0; qi < 200; qi++ {
			i := rng.Intn(2*n) - n/2
			if got, want := q.Estimate(i), h.Estimate(i); !bitEqual(got, want) {
				t.Fatalf("trial %d: Estimate(%d) = %x, reference %x", trial, i, math.Float64bits(got), math.Float64bits(want))
			}
			lo := rng.Intn(2*n) - n/2
			hi := rng.Intn(2*n) - n/2
			if got, want := q.RangeSum(lo, hi), h.RangeSum(lo, hi); !bitEqual(got, want) {
				t.Fatalf("trial %d: RangeSum(%d,%d) = %v (%x), reference %v (%x)",
					trial, lo, hi, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		// The full-domain sum through the seams both formulations share.
		if got, want := q.RangeSum(0, n-1), h.RangeSum(0, n-1); !bitEqual(got, want) {
			t.Fatalf("trial %d: full RangeSum differs", trial)
		}
	}
}

// TestCompiledWaveletBitIdentical is the wavelet twin: the compiled
// ancestor walk must reproduce the full coefficient scan bit for bit.
func TestCompiledWaveletBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := randWavelet(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: bad fixture: %v", trial, err)
		}
		q := CompileWavelet(s)
		n := s.N
		for qi := 0; qi < 200; qi++ {
			i := rng.Intn(2*n) - n/2
			if got, want := q.Estimate(i), s.Estimate(i); !bitEqual(got, want) {
				t.Fatalf("trial %d (n=%d, B=%d): Estimate(%d) = %v (%x), reference %v (%x)",
					trial, n, s.B(), i, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			lo := rng.Intn(2*n) - n/2
			hi := rng.Intn(2*n) - n/2
			if got, want := q.RangeSum(lo, hi), s.RangeSum(lo, hi); !bitEqual(got, want) {
				t.Fatalf("trial %d (n=%d, B=%d): RangeSum(%d,%d) = %v (%x), reference %v (%x)",
					trial, n, s.B(), lo, hi, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		if got, want := q.RangeSum(0, n-1), s.RangeSum(0, n-1); !bitEqual(got, want) {
			t.Fatalf("trial %d: full RangeSum differs", trial)
		}
	}
}

// TestCompiledWaveletSparsePathBitIdentical re-runs the wavelet identity
// property with the dense position table stripped, forcing the binary
// search fallback CompileWavelet uses beyond waveletDenseLimit (test
// domains are all below the limit, so the fallback needs its own pass).
func TestCompiledWaveletSparsePathBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		s := randWavelet(rng)
		q := CompileWavelet(s)
		q.pos = nil
		n := s.N
		for qi := 0; qi < 100; qi++ {
			i := rng.Intn(2*n) - n/2
			if got, want := q.Estimate(i), s.Estimate(i); !bitEqual(got, want) {
				t.Fatalf("trial %d: sparse Estimate(%d) = %v, reference %v", trial, i, got, want)
			}
			lo := rng.Intn(2*n) - n/2
			hi := rng.Intn(2*n) - n/2
			if got, want := q.RangeSum(lo, hi), s.RangeSum(lo, hi); !bitEqual(got, want) {
				t.Fatalf("trial %d: sparse RangeSum(%d,%d) = %v, reference %v", trial, lo, hi, got, want)
			}
		}
	}
}

// TestCompileDispatch: Compile returns the family-specific querier for
// the two known families and falls back to the synopsis itself (a valid
// if slower querier) for anything else.
func TestCompileDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randHistogram(rng)
	if _, ok := Compile(h).(*HistogramQuerier); !ok {
		t.Fatalf("Compile(histogram) = %T, want *HistogramQuerier", Compile(h))
	}
	w := randWavelet(rng)
	if _, ok := Compile(w).(*WaveletQuerier); !ok {
		t.Fatalf("Compile(wavelet) = %T, want *WaveletQuerier", Compile(w))
	}
	var other stubSynopsis
	if got := Compile(other); got != other {
		t.Fatalf("Compile(unknown family) = %T, want the synopsis itself", got)
	}
}

type stubSynopsis struct{}

func (stubSynopsis) Estimate(int) float64      { return 1 }
func (stubSynopsis) RangeSum(int, int) float64 { return 2 }
func (stubSynopsis) Terms() int                { return 0 }
func (stubSynopsis) ErrorCost() float64        { return 0 }
func (stubSynopsis) Domain() int               { return 1 }

// TestCompiledWaveletImmuneToSourceMutation: the querier copies the
// synopsis's slices at compile time — mutating the source afterwards
// (the invalidation hazard the catalog's republish-by-replacement
// avoids) must not skew already-compiled answers.
func TestCompiledWaveletImmuneToSourceMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randWavelet(rng)
	q := CompileWavelet(s)
	i := s.N / 2
	want := q.Estimate(i)
	for k := range s.Values {
		s.Values[k] += 100
	}
	if got := q.Estimate(i); !bitEqual(got, want) {
		t.Fatalf("querier answer moved with source mutation: %v -> %v", want, got)
	}
}

// TestQuerierHotPathZeroAlloc is the allocation gate of the acceptance
// criteria: Estimate and RangeSum on both compiled families allocate
// nothing, ever.
func TestQuerierHotPathZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := CompileHistogram(randHistogram(rng))
	w := CompileWavelet(randWavelet(rng))
	for name, fn := range map[string]func(){
		"histogram/Estimate": func() { h.Estimate(3) },
		"histogram/RangeSum": func() { h.RangeSum(1, h.n-1) },
		"wavelet/Estimate":   func() { w.Estimate(1) },
		"wavelet/RangeSum":   func() { w.RangeSum(1, w.n-1) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestEvalBatch covers the batch evaluator: in-order results, per-op
// validation mirroring the single endpoints, per-key resolution caching,
// and per-op errors that do not fail the batch.
func TestEvalBatch(t *testing.T) {
	h := &hist.Histogram{N: 8, Buckets: []hist.Bucket{
		{Start: 0, End: 3, Rep: 2},
		{Start: 4, End: 7, Rep: 5},
	}}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	q := CompileHistogram(h)
	known := BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 2}
	resolves := 0
	resolve := func(k BatchKey) (Querier, int, *OpError) {
		resolves++
		if k != known {
			return nil, 0, &OpError{Code: "not_found", Message: "no synopsis"}
		}
		return q, h.N, nil
	}
	req := &BatchRequest{Ops: []Op{
		{BatchKey: known, Op: OpEstimate, I: 5},
		{BatchKey: known, Op: OpRangeSum, Lo: 0, Hi: 7},
		{BatchKey: known, Op: OpRangeSum, Lo: -3, Hi: 99}, // clamps like the GET endpoint
		{BatchKey: known, Op: OpEstimate, I: 99},          // out of domain: per-op bad_request
		{BatchKey: known, Op: OpRangeSum, Lo: 5, Hi: 2},   // inverted: per-op bad_request
		{BatchKey: BatchKey{Dataset: "nope"}, Op: OpEstimate, I: 0},
		{BatchKey: known, Op: "median", I: 1}, // unknown op
	}}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	var resp BatchResponse
	EvalBatch(req, resolve, &resp)
	if len(resp.Results) != len(req.Ops) {
		t.Fatalf("%d results for %d ops", len(resp.Results), len(req.Ops))
	}
	if r := resp.Results[0]; r.Err != nil || r.Value != 5 {
		t.Fatalf("estimate result = %+v", r)
	}
	if r := resp.Results[1]; r.Err != nil || r.Value != h.RangeSum(0, 7) {
		t.Fatalf("rangesum result = %+v", r)
	}
	if r := resp.Results[2]; r.Err != nil || r.Value != h.RangeSum(0, 7) {
		t.Fatalf("clamped rangesum result = %+v", r)
	}
	for i, wantCode := range map[int]string{3: "bad_request", 4: "bad_request", 5: "not_found", 6: "bad_request"} {
		if r := resp.Results[i]; r.Err == nil || r.Err.Code != wantCode {
			t.Fatalf("result %d = %+v, want %s error", i, r, wantCode)
		}
	}
	// Two distinct keys in the batch, so exactly two resolver calls: the
	// per-key cache amortizes lookup across the whole batch.
	if resolves != 2 {
		t.Fatalf("%d resolver calls, want 2", resolves)
	}
}

// TestEvalBatchReusesResults: appending into a response with retained
// capacity (the server's pooling pattern) neither clobbers earlier
// results nor reallocates when capacity suffices.
func TestEvalBatchReusesResults(t *testing.T) {
	h := &hist.Histogram{N: 4, Buckets: []hist.Bucket{{Start: 0, End: 3, Rep: 1}}}
	q := CompileHistogram(h)
	resolve := func(BatchKey) (Querier, int, *OpError) { return q, h.N, nil }
	req := &BatchRequest{Ops: []Op{{Op: OpEstimate, I: 1}}}
	resp := &BatchResponse{Results: make([]OpResult, 0, 64)}
	base := &resp.Results[:1][0]
	for round := 0; round < 5; round++ {
		resp.Results = resp.Results[:0]
		EvalBatch(req, resolve, resp)
		if len(resp.Results) != 1 || resp.Results[0].Value != 1 {
			t.Fatalf("round %d: results %+v", round, resp.Results)
		}
		if &resp.Results[:1][0] != base {
			t.Fatalf("round %d: results slice reallocated despite capacity", round)
		}
	}
}

func TestBatchValidate(t *testing.T) {
	if err := (&BatchRequest{}).Validate(); err == nil {
		t.Fatal("empty batch validated")
	}
	big := &BatchRequest{Ops: make([]Op, MaxBatchOps+1)}
	if err := big.Validate(); err == nil {
		t.Fatal("oversized batch validated")
	}
	ok := &BatchRequest{Ops: make([]Op, 1)}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func ExampleEncodeResponse() {
	resp := &BatchResponse{Results: []OpResult{{Value: 2.5}, {Err: &OpError{Code: "not_found", Message: "no synopsis"}}}}
	var sb sortableBuf
	_ = EncodeResponse(&sb, resp)
	fmt.Print(sb.s)
	// Output: {"results":[{"value":2.5},{"value":0,"error":{"code":"not_found","message":"no synopsis"}}]}
}

type sortableBuf struct{ s string }

func (b *sortableBuf) Write(p []byte) (int, error) { b.s += string(p); return len(p), nil }
