package query

import (
	"fmt"
	"math/bits"
)

// WaveletDenseLimit is the largest wavelet domain for which queriers
// carry the O(1) dense index→position table (see waveletDenseLimit). It
// is exported for the flat catalog format (internal/catalog), whose
// on-disk layout must store a position table exactly when the compiled
// querier would build one — otherwise a flat-backed querier and a
// compiled querier of the same synopsis would disagree on their lookup
// path.
const WaveletDenseLimit = waveletDenseLimit

// The view constructors below build queriers from caller-provided
// arrays instead of compiling them from a synopsis. They exist for the
// flat catalog (internal/catalog): a packed catalog file stores exactly
// the arrays CompileHistogram/CompileWavelet precompute, so a replica
// restart can mmap the file and serve through queriers whose slices
// alias the mapping — no decoding, no recompilation, no copying. The
// querier types returned are the same types Compile produces, so
// answers are bit-identical by construction: it is the same code over
// the same float64 bits.
//
// The slices are aliased, not copied. Callers own their immutability:
// a view over a mmap'd file must keep the mapping alive for the
// querier's lifetime and never remap it writable.

// NewHistogramView assembles a HistogramQuerier directly from the
// compiled arrays (see CompileHistogram for their invariants: starts,
// ends ascending bucket bounds partitioning [0, n); prefix the
// left-to-right accumulated weighted sums). Shape errors are rejected;
// semantic invariants (the partition being contiguous) are the caller's
// contract — the flat catalog validates them once per entry before
// constructing the view.
func NewHistogramView(n int, starts, ends []int, reps, prefix []float64) (*HistogramQuerier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("query: histogram view over empty domain %d", n)
	}
	b := len(starts)
	if b == 0 {
		return nil, fmt.Errorf("query: histogram view with no buckets")
	}
	if len(ends) != b || len(reps) != b || len(prefix) != b {
		return nil, fmt.Errorf("query: histogram view arrays disagree: %d starts, %d ends, %d reps, %d prefix",
			b, len(ends), len(reps), len(prefix))
	}
	return &HistogramQuerier{n: n, starts: starts, ends: ends, reps: reps, prefix: prefix}, nil
}

// Arrays returns the querier's compiled arrays (aliased, read-only):
// the serialization source for the flat catalog packer. Round trip:
// NewHistogramView(q.Arrays()) answers bit-identically to q.
func (q *HistogramQuerier) Arrays() (n int, starts, ends []int, reps, prefix []float64) {
	return q.n, q.starts, q.ends, q.reps, q.prefix
}

// NewWaveletView assembles a WaveletQuerier directly from the compiled
// state (see CompileWavelet): the detail coefficients (root excluded)
// sorted ascending by index, the root split out, and the dense
// index→position table — which must be present exactly when n <=
// WaveletDenseLimit and nil beyond it, so the view takes the same
// lookup path a compiled querier of the same synopsis would.
func NewWaveletView(n int, root float64, hasRoot bool, indices []int, values []float64, pos []int32) (*WaveletQuerier, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("query: wavelet view domain %d not a power of two", n)
	}
	if len(indices) != len(values) {
		return nil, fmt.Errorf("query: wavelet view arrays disagree: %d indices, %d values", len(indices), len(values))
	}
	if n <= WaveletDenseLimit {
		if len(pos) != n {
			return nil, fmt.Errorf("query: wavelet view needs a dense position table of %d entries, got %d", n, len(pos))
		}
	} else if pos != nil {
		return nil, fmt.Errorf("query: wavelet view domain %d beyond the dense-table limit carries a position table", n)
	}
	return &WaveletQuerier{
		n: n, log2n: bits.Len(uint(n)) - 1,
		indices: indices, values: values, pos: pos,
		root: root, hasRoot: hasRoot,
	}, nil
}

// Arrays returns the querier's compiled state (aliased, read-only):
// the serialization source for the flat catalog packer. Round trip:
// NewWaveletView(q.Arrays()) answers bit-identically to q.
func (q *WaveletQuerier) Arrays() (n int, root float64, hasRoot bool, indices []int, values []float64, pos []int32) {
	return q.n, q.root, q.hasRoot, q.indices, q.values, q.pos
}
