package query

import (
	"encoding/json"
	"strconv"
)

// DecodeBatch decodes a JSON batch request into req, reusing req's
// retained capacity. It is semantically equivalent to json.Unmarshal
// into a zeroed request — same accepted inputs, same errors — with two
// read-path properties the stdlib call alone does not give:
//
//   - A hand-rolled scanner handles the canonical wire shape (ASCII
//     strings without escapes, lowercase member names, plain numbers)
//     in one pass with a small per-call string intern table, an order
//     of magnitude faster than reflection and nearly allocation-free.
//     Anything outside that shape — escapes, non-ASCII, case-variant
//     or unknown members, number edge cases — falls back to
//     encoding/json wholesale, so unusual inputs keep stdlib semantics
//     and stdlib error text exactly.
//
//   - Stale ops are zeroed before decoding. encoding/json decodes
//     slice elements in place without clearing fields the JSON omits,
//     so decoding into a pooled request would otherwise leak field
//     values (an old op's i or c) from one request into the next.
//
// Unlike json.Decoder.Decode, trailing garbage after the top-level
// object is an error (json.Unmarshal semantics) — the wire format is
// one object per body.
func DecodeBatch(data []byte, req *BatchRequest) error {
	clear(req.Ops[:cap(req.Ops)])
	req.Ops = req.Ops[:0]
	s := batchScanner{data: data}
	if s.scanBatch(req) {
		return nil
	}
	// Fast path bailed: re-clear whatever it appended and let the
	// stdlib be the arbiter of validity and error wording.
	clear(req.Ops[:cap(req.Ops)])
	req.Ops = req.Ops[:0]
	return json.Unmarshal(data, req)
}

// batchScanner is a single-purpose JSON scanner for the BatchRequest
// wire shape. Every scan method returns false to mean "fall back to
// encoding/json", never to assert invalidity — the fast path only
// commits when it has parsed the entire input.
type batchScanner struct {
	data []byte
	pos  int
	strs []string // per-call intern table: batches repeat key strings heavily
}

func (s *batchScanner) ws() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *batchScanner) expect(c byte) bool {
	s.ws()
	if s.pos < len(s.data) && s.data[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

// peek reports the next non-whitespace byte without consuming it.
func (s *batchScanner) peek() byte {
	s.ws()
	if s.pos < len(s.data) {
		return s.data[s.pos]
	}
	return 0
}

func (s *batchScanner) scanBatch(req *BatchRequest) bool {
	if !s.expect('{') {
		return false
	}
	if s.peek() == '}' {
		s.pos++
		return s.atEnd()
	}
	key, ok := s.scanStringBytes()
	if !ok || string(key) != "ops" || !s.expect(':') {
		return false
	}
	if !s.scanOps(req) {
		return false
	}
	// Exactly one member on the fast path; a second member (even a
	// duplicate "ops") goes through the stdlib.
	return s.expect('}') && s.atEnd()
}

func (s *batchScanner) atEnd() bool {
	s.ws()
	return s.pos == len(s.data)
}

func (s *batchScanner) scanOps(req *BatchRequest) bool {
	if !s.expect('[') {
		return false
	}
	if s.peek() == ']' {
		s.pos++
		return true
	}
	for {
		var op Op
		if !s.scanOp(&op) {
			return false
		}
		req.Ops = append(req.Ops, op)
		switch s.peek() {
		case ',':
			s.pos++
		case ']':
			s.pos++
			return true
		default:
			return false
		}
	}
}

func (s *batchScanner) scanOp(op *Op) bool {
	if !s.expect('{') {
		return false
	}
	if s.peek() == '}' {
		s.pos++
		return true
	}
	for {
		key, ok := s.scanStringBytes()
		if !ok || !s.expect(':') {
			return false
		}
		// Exact lowercase member names only: encoding/json also matches
		// case-insensitively, so "Dataset" must take the fallback. A
		// duplicate member overwrites, matching stdlib last-wins.
		switch string(key) {
		case "dataset":
			op.Dataset, ok = s.scanInterned()
		case "family":
			op.Family, ok = s.scanInterned()
		case "metric":
			op.Metric, ok = s.scanInterned()
		case "op":
			op.Op, ok = s.scanInterned()
		case "budget":
			op.Budget, ok = s.scanInt()
		case "c":
			op.C, ok = s.scanFloat()
		case "q":
			op.Q, ok = s.scanInt()
		case "shards":
			op.Shards, ok = s.scanInt()
		case "i":
			op.I, ok = s.scanInt()
		case "lo":
			op.Lo, ok = s.scanInt()
		case "hi":
			op.Hi, ok = s.scanInt()
		default:
			return false
		}
		if !ok {
			return false
		}
		switch s.peek() {
		case ',':
			s.pos++
		case '}':
			s.pos++
			return true
		default:
			return false
		}
	}
}

// scanStringBytes scans a plain ASCII string without escapes and
// returns the bytes between the quotes. Escapes, control characters,
// and non-ASCII all punt to the stdlib (which handles \u-sequences and
// invalid-UTF-8 replacement the fast path does not reproduce).
func (s *batchScanner) scanStringBytes() ([]byte, bool) {
	if !s.expect('"') {
		return nil, false
	}
	start := s.pos
	for s.pos < len(s.data) {
		switch c := s.data[s.pos]; {
		case c == '"':
			b := s.data[start:s.pos]
			s.pos++
			return b, true
		case c == '\\' || c < 0x20 || c >= 0x80:
			return nil, false
		default:
			s.pos++
		}
	}
	return nil, false
}

// scanInterned scans a string value, deduplicating through the per-call
// intern table — family/metric/op values come from tiny closed sets, so
// a 100-op batch allocates a handful of strings, not hundreds. The
// `v == string(b)` comparison does not allocate.
func (s *batchScanner) scanInterned() (string, bool) {
	b, ok := s.scanStringBytes()
	if !ok {
		return "", false
	}
	for _, v := range s.strs {
		if v == string(b) {
			return v, true
		}
	}
	v := string(b)
	if len(s.strs) < 32 {
		s.strs = append(s.strs, v)
	}
	return v, true
}

// scanInt scans a strict JSON integer. Fractions and exponents punt to
// the stdlib, which rejects them for int fields with its own error; so
// do tokens long enough to overflow (stdlib reports out-of-range).
func (s *batchScanner) scanInt() (int, bool) {
	s.ws()
	neg := false
	if s.pos < len(s.data) && s.data[s.pos] == '-' {
		neg = true
		s.pos++
	}
	start := s.pos
	for s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
		s.pos++
	}
	ndig := s.pos - start
	if ndig == 0 || ndig > 18 || (ndig > 1 && s.data[start] == '0') {
		return 0, false
	}
	if s.pos < len(s.data) {
		switch s.data[s.pos] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	n := 0
	for _, c := range s.data[start:s.pos] {
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// scanFloat scans a JSON number for a float64 field. The token is
// validated against the JSON number grammar before ParseFloat, because
// ParseFloat is laxer than JSON (leading zeros, bare ".5", hex floats).
func (s *batchScanner) scanFloat() (float64, bool) {
	s.ws()
	start := s.pos
	if s.pos < len(s.data) && s.data[s.pos] == '-' {
		s.pos++
	}
	d0 := s.pos
	for s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
		s.pos++
	}
	ndig := s.pos - d0
	if ndig == 0 || (ndig > 1 && s.data[d0] == '0') {
		return 0, false
	}
	if s.pos < len(s.data) && s.data[s.pos] == '.' {
		s.pos++
		f0 := s.pos
		for s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
			s.pos++
		}
		if s.pos == f0 {
			return 0, false
		}
	}
	if s.pos < len(s.data) && (s.data[s.pos] == 'e' || s.data[s.pos] == 'E') {
		s.pos++
		if s.pos < len(s.data) && (s.data[s.pos] == '+' || s.data[s.pos] == '-') {
			s.pos++
		}
		e0 := s.pos
		for s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
			s.pos++
		}
		if s.pos == e0 {
			return 0, false
		}
	}
	f, err := strconv.ParseFloat(string(s.data[start:s.pos]), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}
