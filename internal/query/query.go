// Package query is the hardware-limited read path: compiled queriers
// built once per cataloged synopsis, answering point estimates and range
// sums in O(log) time with zero allocation per call.
//
// A synopsis answers queries through the generic Synopsis interface, but
// the generic methods are built for correctness, not throughput: the
// histogram range sum scans every bucket, the wavelet range sum scans
// every retained coefficient, and the wavelet point estimate allocates a
// path slice and binary-searches per ancestor. Serving millions of
// queries over a synopsis that never changes between catalog publishes
// is exactly the case for compiling: CompileHistogram precomputes
// bucket-end and prefix-weighted-sum arrays so a range sum is one binary
// search per endpoint plus O(1) arithmetic; CompileWavelet precomputes a
// sorted-ancestor evaluator so a range sum touches only the O(log n)
// retained ancestors of the two endpoints (an O(1) dense-table lookup
// each on modest domains, O(log B) binary search beyond) instead of all
// B coefficients.
//
// Compiled answers are bit-identical to the uncompiled Synopsis methods
// — not approximately equal, the same float64 bits — so a served answer
// never depends on whether it came off the compiled or the reference
// path. The identities rest on two invariants, property-tested in this
// package and documented at the methods they constrain:
//
//   - Histogram.RangeSum is defined as the prefix difference
//     P(hi) - P(lo-1) with P accumulating buckets left to right; the
//     compiled prefix array is built by the same left-to-right
//     accumulation, so prefix[k] holds the identical float64 the
//     reference scan reaches after k whole buckets.
//   - The wavelet coefficient scan adds exactly 0.0 for every retained
//     coefficient whose support falls wholly inside (or outside) the
//     query range — only the root and the ancestors of the two range
//     endpoints contribute — and a running float64 sum that starts at
//     +0.0 is unchanged by adding signed zeros. The compiled walk visits
//     exactly those ancestors, in the same ascending-index order, with
//     the same per-coefficient arithmetic.
//
// Queriers are immutable once compiled. The catalog compiles one per
// entry at publish time; republication (a live mutation, a rebuilt
// budget) swaps the whole entry, querier included, so readers never
// observe a querier for a synopsis that is no longer cataloged.
package query

import (
	"math/bits"

	"probsyn/internal/hist"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

// Querier is the compiled read surface: the query subset of the Synopsis
// interface. Every Synopsis is itself a Querier (the uncompiled
// reference path); Compile returns an O(log)-time zero-allocation
// implementation for the families it knows.
type Querier interface {
	// Estimate returns the synopsis's approximation of item i's frequency.
	Estimate(i int) float64
	// RangeSum estimates the total frequency over the inclusive item
	// range [lo, hi] (out-of-domain ends are clamped).
	RangeSum(lo, hi int) float64
}

// Compile returns the compiled querier for a synopsis: the precomputed
// fast path for histograms and wavelets, and the synopsis itself (its
// generic methods are a valid, slower querier) for any other family.
// Compiled answers are bit-identical to the synopsis's own methods.
func Compile(s synopsis.Synopsis) Querier {
	switch t := s.(type) {
	case *hist.Histogram:
		return CompileHistogram(t)
	case *wavelet.Synopsis:
		return CompileWavelet(t)
	default:
		return s
	}
}

// HistogramQuerier answers histogram queries in O(log B) per call from
// precomputed bucket-end and prefix-weighted-sum arrays.
type HistogramQuerier struct {
	n      int
	starts []int     // bucket start items, ascending
	ends   []int     // bucket end items, ascending
	reps   []float64 // bucket representatives
	// prefix[k] is the estimated total frequency of buckets 0..k-1 —
	// sum of width*rep accumulated left to right, the same order (and
	// therefore the same float64 rounding) as Histogram.prefixTo.
	prefix []float64
}

// CompileHistogram precomputes the querier arrays for a histogram. The
// histogram is read once; later mutations to it are not reflected (the
// catalog republishes a new entry, and with it a new querier, instead of
// mutating in place).
func CompileHistogram(h *hist.Histogram) *HistogramQuerier {
	q := &HistogramQuerier{
		n:      h.N,
		starts: make([]int, len(h.Buckets)),
		ends:   make([]int, len(h.Buckets)),
		reps:   make([]float64, len(h.Buckets)),
		prefix: make([]float64, len(h.Buckets)),
	}
	total := 0.0
	for k, b := range h.Buckets {
		q.starts[k] = b.Start
		q.ends[k] = b.End
		q.reps[k] = b.Rep
		q.prefix[k] = total
		total += float64(b.Width()) * b.Rep
	}
	return q
}

// bucketOf returns the index of the bucket containing item i (i must be
// in-domain): the first bucket whose end is >= i. Inlined binary search —
// sort.Search costs a non-inlinable closure call per probe.
func (q *HistogramQuerier) bucketOf(i int) int {
	lo, hi := 0, len(q.ends)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if q.ends[m] < i {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo == len(q.ends) {
		lo = len(q.ends) - 1 // unreachable on a Validate()-clean histogram
	}
	return lo
}

// Estimate is bit-identical to Histogram.Estimate (same clamp, same
// representative lookup), one binary search, zero allocations.
func (q *HistogramQuerier) Estimate(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= q.n {
		i = q.n - 1
	}
	return q.reps[q.bucketOf(i)]
}

// prefixTo returns P(i) exactly as Histogram.prefixTo computes it:
// prefix[k] is the identical left-to-right accumulation over the k whole
// buckets before i's bucket, and the partial term uses the same
// expression — so the float64 result is bit-identical.
func (q *HistogramQuerier) prefixTo(i int) float64 {
	k := q.bucketOf(i)
	return q.prefix[k] + float64(i-q.starts[k]+1)*q.reps[k]
}

// RangeSum is bit-identical to Histogram.RangeSum: the same clamp and the
// same prefix difference P(hi) - P(lo-1), in O(log B) time with zero
// allocations.
func (q *HistogramQuerier) RangeSum(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= q.n {
		hi = q.n - 1
	}
	if hi < lo {
		return 0
	}
	if lo == 0 {
		return q.prefixTo(hi)
	}
	return q.prefixTo(hi) - q.prefixTo(lo-1)
}

// waveletDenseLimit bounds the domains for which CompileWavelet builds
// the O(1) dense position table (4 bytes per coefficient slot, so at most
// 256 KiB per querier). Larger domains fall back to the O(log B) binary
// search — still allocation-free, just more probes per ancestor.
const waveletDenseLimit = 1 << 16

// WaveletQuerier answers wavelet queries by visiting only the retained
// ancestors of the queried leaves: O(log n) ancestor probes per call,
// each O(1) through the dense position table (domains up to
// waveletDenseLimit) or O(log B) by inlined binary search beyond it.
type WaveletQuerier struct {
	n     int // padded power-of-two domain
	log2n int
	// indices/values are the retained coefficients, sorted ascending by
	// index — copied so a caller mutating the source synopsis after
	// compilation cannot skew served answers.
	indices []int
	values  []float64
	// pos maps a coefficient index to its position in values, -1 when not
	// retained. Built only for domains up to waveletDenseLimit; nil means
	// find falls back to binary search over indices.
	pos []int32
	// root is the retained value of coefficient 0 (the overall average),
	// or 0 with hasRoot=false when it was not retained. Splitting it out
	// keeps the per-level walk free of the one coefficient whose support
	// arithmetic is special-cased everywhere else.
	root    float64
	hasRoot bool
}

// CompileWavelet precomputes the querier state for a wavelet synopsis.
// The synopsis's coefficient slices are copied, not aliased.
func CompileWavelet(s *wavelet.Synopsis) *WaveletQuerier {
	q := &WaveletQuerier{n: s.N, log2n: bits.Len(uint(s.N)) - 1}
	for k, idx := range s.Indices {
		if idx == 0 {
			q.root = s.Values[k]
			q.hasRoot = true
			continue
		}
		q.indices = append(q.indices, idx)
		q.values = append(q.values, s.Values[k])
	}
	if q.n <= waveletDenseLimit {
		q.pos = make([]int32, q.n)
		for k := range q.pos {
			q.pos[k] = -1
		}
		for k, idx := range q.indices {
			q.pos[idx] = int32(k)
		}
	}
	return q
}

// find returns the retained-coefficient position of index idx, or -1:
// one array load on the dense path (kept small enough to inline into the
// per-level walks), the binary-search fallback otherwise.
func (q *WaveletQuerier) find(idx int) int {
	if q.pos != nil {
		return int(q.pos[idx])
	}
	return q.findSparse(idx)
}

// findSparse is the beyond-waveletDenseLimit fallback: an inlined binary
// search over the sorted detail indices — O(log B), no closure, no
// allocation.
func (q *WaveletQuerier) findSparse(idx int) int {
	lo, hi := 0, len(q.indices)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if q.indices[m] < idx {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(q.indices) && q.indices[lo] == idx {
		return lo
	}
	return -1
}

// Estimate sums the retained ancestors of leaf i with their signs —
// the same terms, in the same order (root, then coarse to fine), with
// the same arithmetic as Synopsis.Estimate, so the result is
// bit-identical. Unlike the reference method it allocates no path slice
// and recomputes no supports: the ancestor at shift s is (n+i)>>s, and
// its sign at leaf i is bit s-1 of n+i (0: left/plus half, 1: right).
func (q *WaveletQuerier) Estimate(i int) float64 {
	if i < 0 || i >= q.n {
		// The reference method multiplies every ancestor by a zero sign
		// for out-of-domain leaves and so returns +0.0; short-circuit to
		// the same answer instead of walking a corrupt ancestor chain.
		return 0
	}
	v := 0.0
	if q.hasRoot {
		v += q.root
	}
	x := q.n + i
	for s := q.log2n; s >= 1; s-- {
		if k := q.find(x >> uint(s)); k >= 0 {
			if x>>uint(s-1)&1 == 0 {
				v += q.values[k]
			} else {
				v -= q.values[k]
			}
		}
	}
	return v
}

// RangeSum visits, in ascending index order, exactly the retained
// coefficients that contribute a nonzero term to Synopsis.RangeSum's
// full scan: the root and the ancestors of the clamped endpoints lo and
// hi. Every other retained coefficient's support lies wholly inside or
// outside [lo, hi], so the scan adds a signed zero for it — which never
// changes a float64 accumulator that starts at +0.0 (x + ±0.0 == x, and
// the accumulator can never itself become -0.0: it starts at +0.0 and
// +0.0 + -0.0 == +0.0). Each visited coefficient's term is computed with
// the scan's own overlap arithmetic, so the sum is bit-identical.
func (q *WaveletQuerier) RangeSum(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= q.n {
		hi = q.n - 1
	}
	total := 0.0
	if hi < lo {
		return total
	}
	if q.hasRoot {
		total += q.root * float64(hi-lo+1)
	}
	xlo, xhi := q.n+lo, q.n+hi
	for s := q.log2n; s >= 1; s-- {
		la, ha := xlo>>uint(s), xhi>>uint(s)
		if k := q.find(la); k >= 0 {
			total += q.straddleTerm(k, la, lo, hi, s)
		}
		if ha != la {
			if k := q.find(ha); k >= 0 {
				total += q.straddleTerm(k, ha, lo, hi, s)
			}
		}
	}
	return total
}

// straddleTerm returns the scan's term for the retained detail
// coefficient at position k with index idx (an ancestor of lo or hi, at
// support size 1<<s): value times the signed overlap of the clamped
// query range with its plus and minus halves, with the same expressions
// Synopsis.RangeSum evaluates. The caller resolves k so the common case
// — an ancestor that was not retained — stays on the inlined find path
// with no call overhead.
func (q *WaveletQuerier) straddleTerm(k, idx, lo, hi, s int) float64 {
	size := 1 << uint(s)
	cLo := (idx - (q.n >> uint(s))) << uint(s) // first leaf of the support
	cHi := cLo + size - 1
	a, b := lo, hi
	if a < cLo {
		a = cLo
	}
	if b > cHi {
		b = cHi
	}
	mid := cLo + size/2 // first leaf of the minus half
	plus := overlap(a, b, cLo, mid-1)
	minus := overlap(a, b, mid, cHi)
	return q.values[k] * float64(plus-minus)
}

// overlap returns the size of [a,b] ∩ [lo,hi] — the same helper
// Synopsis.RangeSum uses, duplicated here so the packages stay
// dependency-light in one direction only.
func overlap(a, b, lo, hi int) int {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if a > b {
		return 0
	}
	return b - a + 1
}
