package probsyn

import (
	"context"
	"fmt"
	"sync"

	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/pdata"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

// Maintainer is a live Frontier: the build's dynamic-program state is
// retained, so the frontier can absorb Append/Update mutations of the
// underlying data without a from-scratch rebuild, while every extraction
// stays byte-identical to a fresh BuildSweep over the mutated data. See
// BuildLive.
type Maintainer = synopsis.Maintainer

// BuildLive is BuildSweep's maintainable twin: the same one-DP-serves-
// every-budget frontier, built with the same functional options, but
// returned as a Maintainer whose retained state absorbs data mutations.
//
// Maintenance is defined over the value-pdf model — the one model in
// which "item i's distribution" is an independently replaceable object —
// so the source must be a *ValuePDF (convert other models with their
// induced value-pdf marginals first if that semantics is acceptable).
//
// What a mutation costs:
//
//   - histogram: Append runs only the new suffix columns of the DP;
//     Update re-runs the columns right of the updated item (hot-tail
//     corrections are nearly free, an update at item 0 is a full re-DP).
//   - wavelet, SSE family: every mutation is an O(k log n) coefficient
//     patch plus an O(n) order merge — no re-sort, no moment pass.
//   - wavelet, DP families: mean-preserving corrections repair only the
//     O(log n) dirty-path state blocks; mean-changing mutations re-run
//     the forward sweep over the patched state (the tree's incoming
//     values shift globally — see DESIGN.md "Incremental maintenance").
//
// The determinism contract is unchanged: after any mutation sequence,
// Synopsis(b) is codec-byte-identical to BuildSweep at budget b over the
// final data, at every worker count. The returned Maintainer serializes
// its own mutations and extractions with an internal lock, and each
// mutation holds a pool admission token like any other build.
//
// The (1+eps)-approximate DP has no frontier (WithEps is rejected), and
// workload-weighted histograms reject Append — the weight vector is
// per-item and there is no ground truth for new items' weights.
func BuildLive(src Source, m Metric, Bmax int, opts ...BuildOption) (Maintainer, error) {
	if Bmax < 1 {
		return nil, fmt.Errorf("probsyn: live budget %d, want >= 1", Bmax)
	}
	cfg := buildConfig{params: DefaultParams(), parallelism: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.epsSet {
		return nil, fmt.Errorf("probsyn: the (1+eps)-approximate DP prunes per budget and has no frontier; use the exact DP for live maintenance")
	}
	vp, ok := src.(*pdata.ValuePDF)
	if !ok {
		return nil, fmt.Errorf("probsyn: live maintenance is defined over the value-pdf model; got %T (build from the induced value pdf if marginal semantics suffice)", src)
	}
	pool := cfg.pool
	if pool == nil {
		pool = engine.New(engine.Options{Workers: cfg.parallelism})
	}
	release, err := pool.Acquire(context.Background())
	if err != nil {
		return nil, err
	}
	defer release()
	if cfg.wavelet {
		if cfg.weights != nil {
			return nil, fmt.Errorf("probsyn: workload weights are a histogram option")
		}
		if cfg.quantizeSet && cfg.rquantSet {
			return nil, fmt.Errorf("probsyn: WithQuantize (approximate restricted) and WithUnrestricted are mutually exclusive")
		}
		family := wavelet.LiveRestrictedFamily
		q := 0
		switch {
		case cfg.quantizeSet:
			family, q = wavelet.LiveUnrestrictedFamily, cfg.quantize
		case cfg.rquantSet:
			// Quantized restricted: NewLive replays mutations on the
			// quantized grids, matching a fresh quantized sweep.
			if m == SSE {
				return nil, fmt.Errorf("probsyn: the SSE wavelet build is greedy-exact (Theorem 7); incoming-value quantization applies to the restricted DP metrics")
			}
			q = cfg.rquant
		case m == SSE || m == SSEFixed:
			family = wavelet.LiveSSEFamily
		}
		lv, err := wavelet.NewLive(vp, family, m, cfg.params, Bmax, q, pool)
		if err != nil {
			return nil, err
		}
		return &liveWavelet{lv: lv, pool: pool}, nil
	}
	if cfg.quantizeSet {
		return nil, fmt.Errorf("probsyn: unrestricted coefficient values are a wavelet option")
	}
	if cfg.rquantSet {
		return nil, fmt.Errorf("probsyn: incoming-value quantization is a wavelet option")
	}
	cfgCopy := cfg // the oracle factory outlives this call
	makeOracle := func(v *pdata.ValuePDF) (hist.Oracle, error) {
		return histOracle(v, m, &cfgCopy)
	}
	lv, err := hist.NewLiveDP(vp, makeOracle, Bmax, pool)
	if err != nil {
		return nil, err
	}
	f := &liveHistogram{lv: lv, pool: pool, weighted: cfg.weights != nil, stats: cfg.dpStats}
	f.snapStats()
	return f, nil
}

// liveHistogram adapts hist.LiveDP to the shared Maintainer surface.
type liveHistogram struct {
	mu       sync.Mutex
	lv       *hist.LiveDP
	pool     *engine.Pool
	weighted bool
	stats    *hist.DPStats
}

// snapStats refreshes the WithDPStats sink (if any) with the table's
// cumulative work counters; called under mu after build and mutations.
func (f *liveHistogram) snapStats() {
	if f.stats != nil {
		*f.stats = f.lv.Table().Stats()
	}
}

func (f *liveHistogram) Bmax() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lv.Table().Bmax()
}

func (f *liveHistogram) Domain() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lv.Domain()
}

func (f *liveHistogram) Cost(b int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b < 1 {
		b = 1
	}
	return f.lv.Table().Cost(b)
}

func (f *liveHistogram) Synopsis(b int) (Synopsis, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b < 1 || b > f.lv.Table().Bmax() {
		return nil, fmt.Errorf("probsyn: frontier budget %d outside [1, %d]", b, f.lv.Table().Bmax())
	}
	return f.lv.Table().Histogram(b)
}

func (f *liveHistogram) Append(items []pdata.ItemPDF) error {
	if f.weighted {
		return fmt.Errorf("probsyn: workload-weighted live histograms cannot Append (no weights for new items); rebuild with an extended weight vector")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	release, err := f.pool.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	defer f.snapStats()
	return f.lv.Append(items)
}

func (f *liveHistogram) Update(i int, item pdata.ItemPDF) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	release, err := f.pool.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	defer f.snapStats()
	return f.lv.Update(i, item)
}

// liveWavelet adapts wavelet.Live to the shared Maintainer surface.
type liveWavelet struct {
	mu   sync.Mutex
	lv   *wavelet.Live
	pool *engine.Pool
}

func (f *liveWavelet) Bmax() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lv.Bmax()
}

func (f *liveWavelet) Domain() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lv.Domain()
}

func (f *liveWavelet) Cost(b int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lv.Cost(b)
}

// ErrorBound surfaces the quantized restricted DP's additive
// suboptimality bound under the current data (0 for exact families); see
// ApproxBound.
func (f *liveWavelet) ErrorBound() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lv.ErrorBound()
}

func (f *liveWavelet) Synopsis(b int) (Synopsis, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	syn, err := f.lv.Synopsis(b)
	if err != nil {
		return nil, err
	}
	return syn, nil
}

func (f *liveWavelet) Append(items []pdata.ItemPDF) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	release, err := f.pool.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	return f.lv.Append(items)
}

func (f *liveWavelet) Update(i int, item pdata.ItemPDF) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	release, err := f.pool.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	return f.lv.Update(i, item)
}

// assert both adapters satisfy the interface.
var (
	_ Maintainer = (*liveHistogram)(nil)
	_ Maintainer = (*liveWavelet)(nil)
)
