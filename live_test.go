package probsyn_test

// Live-maintenance property tests: after ANY random sequence of appends
// and in-place updates, a BuildLive frontier must be codec-byte-identical
// at every budget to a fresh BuildSweep over the final data — at worker
// counts {1, 2, NumCPU}, under -race in CI. This is the PR's core
// contract: retained DP state plus incremental repair never drifts from
// a from-scratch build.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"probsyn"
	"probsyn/internal/hist"
)

func liveRandItem(rng *rand.Rand) probsyn.ItemPDF {
	k := 1 + rng.Intn(3)
	entries := make([]probsyn.FreqProb, 0, k)
	remaining := 1.0
	for j := 0; j < k; j++ {
		p := float64(1+rng.Intn(4)) * 0.125
		if p > remaining {
			break
		}
		remaining -= p
		entries = append(entries, probsyn.FreqProb{Freq: float64(rng.Intn(6)), Prob: p})
	}
	return probsyn.ItemPDF{Entries: entries}
}

func liveRandVP(rng *rand.Rand, n int) *probsyn.ValuePDF {
	vp := &probsyn.ValuePDF{N: n, Items: make([]probsyn.ItemPDF, n)}
	for i := range vp.Items {
		vp.Items[i] = liveRandItem(rng)
	}
	return vp
}

// liveFamilies enumerates the configurations live maintenance must agree
// with BuildSweep on: both families, all three wavelet paths.
func liveFamilies() []struct {
	name string
	m    probsyn.Metric
	opts []probsyn.BuildOption
} {
	return []struct {
		name string
		m    probsyn.Metric
		opts []probsyn.BuildOption
	}{
		{"histogram-sse", probsyn.SSE, nil},
		{"histogram-sae", probsyn.SAE, nil},
		{"wavelet-sse", probsyn.SSE, []probsyn.BuildOption{probsyn.WithWavelet()}},
		{"wavelet-restricted", probsyn.SAE, []probsyn.BuildOption{probsyn.WithWavelet()}},
		{"wavelet-unrestricted", probsyn.SAE, []probsyn.BuildOption{probsyn.WithWavelet(), probsyn.WithUnrestricted(1)}},
	}
}

// mutate applies one random mutation to both the live frontier and the
// plain model copy; mean-preserving corrections are in the mix so the
// wavelet dirty-path repair is exercised alongside the resweep path.
func mutate(t *testing.T, rng *rand.Rand, live probsyn.Maintainer, cur *probsyn.ValuePDF) {
	t.Helper()
	switch rng.Intn(4) {
	case 0: // append a batch (eventually outgrows the wavelet padding)
		k := 1 + rng.Intn(3)
		items := make([]probsyn.ItemPDF, k)
		for j := range items {
			items[j] = liveRandItem(rng)
			cur.Items = append(cur.Items, probsyn.ItemPDF{Entries: append([]probsyn.FreqProb(nil), items[j].Entries...)})
		}
		cur.N = len(cur.Items)
		if err := live.Append(items); err != nil {
			t.Fatalf("append: %v", err)
		}
	case 1: // mean-preserving correction
		i := rng.Intn(cur.N)
		it := probsyn.ItemPDF{Entries: []probsyn.FreqProb{{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25}}}
		cur.Items[i] = probsyn.ItemPDF{Entries: append([]probsyn.FreqProb(nil), it.Entries...)}
		if err := live.Update(i, it); err != nil {
			t.Fatalf("update: %v", err)
		}
	default: // arbitrary in-place update
		i := rng.Intn(cur.N)
		it := liveRandItem(rng)
		cur.Items[i] = probsyn.ItemPDF{Entries: append([]probsyn.FreqProb(nil), it.Entries...)}
		if err := live.Update(i, it); err != nil {
			t.Fatalf("update: %v", err)
		}
	}
}

func assertLiveMatchesSweep(t *testing.T, live probsyn.Maintainer, cur *probsyn.ValuePDF, m probsyn.Metric, B int, opts []probsyn.BuildOption, tag string) {
	t.Helper()
	fresh, err := probsyn.BuildSweep(cur, m, B, opts...)
	if err != nil {
		t.Fatalf("%s: fresh sweep: %v", tag, err)
	}
	if live.Bmax() != fresh.Bmax() {
		t.Fatalf("%s: live Bmax %d, fresh %d", tag, live.Bmax(), fresh.Bmax())
	}
	if live.Domain() != cur.N {
		t.Fatalf("%s: live domain %d, data %d", tag, live.Domain(), cur.N)
	}
	for b := 1; b <= live.Bmax(); b++ {
		ls, err := live.Synopsis(b)
		if err != nil {
			t.Fatalf("%s: live budget %d: %v", tag, b, err)
		}
		fs, err := fresh.Synopsis(b)
		if err != nil {
			t.Fatalf("%s: fresh budget %d: %v", tag, b, err)
		}
		lb, err := probsyn.MarshalSynopsis(ls)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := probsyn.MarshalSynopsis(fs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, fb) {
			t.Fatalf("%s: budget %d: live synopsis bytes differ from fresh BuildSweep", tag, b)
		}
	}
}

// TestLiveByteIdenticalToFreshSweep is the PR's acceptance property: any
// mutation sequence, every budget, byte-identical through the codec, at
// several worker counts.
func TestLiveByteIdenticalToFreshSweep(t *testing.T) {
	const B = 6
	for _, fam := range liveFamilies() {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			t.Run(fmt.Sprintf("%s/workers=%d", fam.name, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(41 + workers)))
				vp := liveRandVP(rng, 13)
				opts := append(append([]probsyn.BuildOption(nil), fam.opts...), probsyn.WithParallelism(workers))
				live, err := probsyn.BuildLive(vp, fam.m, B, opts...)
				if err != nil {
					t.Fatal(err)
				}
				cur := vp.Clone()
				assertLiveMatchesSweep(t, live, cur, fam.m, B, opts, "initial")
				for step := 0; step < 6; step++ {
					mutate(t, rng, live, cur)
					assertLiveMatchesSweep(t, live, cur, fam.m, B, opts, fmt.Sprintf("step %d", step))
				}
			})
		}
	}
}

// TestBuildLiveValidation covers the construction guard rails.
func TestBuildLiveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vp := liveRandVP(rng, 8)
	if _, err := probsyn.BuildLive(vp, probsyn.SSE, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := probsyn.BuildLive(vp, probsyn.SSE, 4, probsyn.WithEps(0.5)); err == nil {
		t.Fatal("eps-approximate live accepted")
	}
	if _, err := probsyn.BuildLive(vp, probsyn.SSE, 4, probsyn.WithUnrestricted(1)); err == nil {
		t.Fatal("unrestricted histogram accepted")
	}
	basic := &probsyn.Basic{N: 4, Tuples: []probsyn.BasicTuple{{Item: 1, Prob: 0.5}}}
	if _, err := probsyn.BuildLive(basic, probsyn.SSE, 2); err == nil {
		t.Fatal("non-value-pdf source accepted")
	}
	// Workload weights: builds and updates work, appends are rejected.
	weights := make([]float64, vp.N)
	for i := range weights {
		weights[i] = float64(1 + i%2)
	}
	live, err := probsyn.BuildLive(vp, probsyn.SSEFixed, 3, probsyn.WithWorkloadWeights(weights))
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Update(2, liveRandItem(rng)); err != nil {
		t.Fatalf("weighted update: %v", err)
	}
	if err := live.Append([]probsyn.ItemPDF{liveRandItem(rng)}); err == nil {
		t.Fatal("weighted append accepted")
	}
	syn, err := live.Synopsis(3)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Terms() != 3 {
		t.Fatalf("weighted live synopsis has %d terms, want 3", syn.Terms())
	}
}

// TestLivePrunedByteIdenticalToDenseFresh guards the pruned DP's
// resume-from-column interaction end to end: a live histogram frontier
// maintained with pruning on (the default) must stay codec-byte-identical
// to a fresh sweep over the final data built with the dense reference
// path forced — stale back-pointer seeds and clamped monotone
// certificates included. It also pins that WithDPStats keeps reporting
// across mutations.
func TestLivePrunedByteIdenticalToDenseFresh(t *testing.T) {
	const B = 5
	t.Setenv(hist.DenseDPEnv, "")
	os.Unsetenv(hist.DenseDPEnv)
	for _, m := range []probsyn.Metric{probsyn.SSE, probsyn.MARE} {
		rng := rand.New(rand.NewSource(99))
		vp := liveRandVP(rng, 17)
		var st probsyn.DPStats
		live, err := probsyn.BuildLive(vp, m, B, probsyn.WithParallelism(2), probsyn.WithDPStats(&st))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for step := 0; step < 6; step++ {
			mutate(t, rng, live, vp)
		}
		if st.CandidatesScanned+st.CandidatesPruned == 0 {
			t.Fatalf("%v: WithDPStats sink not refreshed by live mutations", m)
		}
		os.Setenv(hist.DenseDPEnv, "1")
		fresh, err := probsyn.BuildSweep(vp, m, B)
		os.Unsetenv(hist.DenseDPEnv)
		if err != nil {
			t.Fatalf("%v: dense fresh sweep: %v", m, err)
		}
		for b := 1; b <= live.Bmax(); b++ {
			ls, err := live.Synopsis(b)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := fresh.Synopsis(b)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := probsyn.MarshalSynopsis(ls)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := probsyn.MarshalSynopsis(fs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(lb, fb) {
				t.Fatalf("%v: budget %d: pruned live bytes differ from dense fresh sweep", m, b)
			}
		}
	}
}
