package probsyn_test

// Frontier property tests: for both synopsis families, one BuildSweep
// must serve every budget b <= Bmax with (1) non-increasing costs and
// (2) a synopsis whose codec bytes are identical to an independent
// Build at budget b — at several worker counts, so the parallel DP
// schedule provably does not leak into the frontier. Run under -race in
// CI, this also exercises concurrent extraction.

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"probsyn"
	"probsyn/internal/gen"
)

func sweepSource(n int) probsyn.Source {
	return gen.MystiQLinkage(rand.New(rand.NewSource(42)), gen.DefaultMystiQ(n))
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

// familyOpts enumerates the build configurations the frontier must agree
// with Build on, across both families and the three wavelet paths.
func familyOpts() map[string][]probsyn.BuildOption {
	return map[string][]probsyn.BuildOption{
		"histogram":            nil,
		"wavelet-restricted":   {probsyn.WithWavelet()},
		"wavelet-unrestricted": {probsyn.WithWavelet(), probsyn.WithUnrestricted(1)},
	}
}

func TestFrontierByteIdenticalToIndependentBuilds(t *testing.T) {
	src := sweepSource(64)
	const Bmax = 12
	for name, opts := range familyOpts() {
		m := probsyn.SAE
		if name == "histogram" {
			m = probsyn.SSE
		}
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			wopts := append(append([]probsyn.BuildOption(nil), opts...), probsyn.WithParallelism(workers))
			fr, err := probsyn.BuildSweep(src, m, Bmax, wopts...)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			if fr.Bmax() != Bmax {
				t.Fatalf("%s: Bmax = %d, want %d", name, fr.Bmax(), Bmax)
			}
			prev := fr.Cost(1)
			for b := 1; b <= Bmax; b++ {
				if c := fr.Cost(b); c > prev {
					t.Fatalf("%s: cost increases at budget %d: %v > %v", name, b, c, prev)
				} else {
					prev = c
				}
				syn, err := fr.Synopsis(b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := probsyn.MarshalSynopsis(syn)
				if err != nil {
					t.Fatal(err)
				}
				// Independent builds run serial: worker count must not
				// change a byte anywhere in the frontier.
				sopts := append(append([]probsyn.BuildOption(nil), opts...), probsyn.WithParallelism(1))
				indep, err := probsyn.Build(src, m, b, sopts...)
				if err != nil {
					t.Fatal(err)
				}
				want, err := probsyn.MarshalSynopsis(indep)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/workers=%d: budget %d: swept synopsis bytes differ from independent build", name, workers, b)
				}
				// The frontier cost is the DP objective value. Wavelet
				// synopses record exactly it; the materialized histogram
				// re-prices its buckets in bucket order, which can move
				// the sum by an ulp — allow only that.
				if got, rec := fr.Cost(b), syn.ErrorCost(); got != rec {
					if name != "histogram" || relDiff(got, rec) > 1e-12 {
						t.Fatalf("%s: Cost(%d) = %v but synopsis records %v", name, b, got, rec)
					}
				}
			}
			// Out-of-range extraction budgets are errors, not clamps.
			for _, b := range []int{0, -1, Bmax + 1} {
				if _, err := fr.Synopsis(b); err == nil {
					t.Fatalf("%s: Synopsis(%d) succeeded, want range error", name, b)
				}
			}
		}
	}
}

// TestFrontierConcurrentExtraction: Synopsis is read-only on the DP
// tables, so concurrent per-budget extraction must be race-free (-race
// in CI) and agree with serial extraction.
func TestFrontierConcurrentExtraction(t *testing.T) {
	src := sweepSource(64)
	const Bmax = 16
	for name, opts := range familyOpts() {
		fr, err := probsyn.BuildSweep(src, probsyn.SAE, Bmax, append(opts, probsyn.WithParallelism(2))...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := make([][]byte, Bmax)
		for b := 1; b <= Bmax; b++ {
			syn, err := fr.Synopsis(b)
			if err != nil {
				t.Fatal(err)
			}
			if want[b-1], err = probsyn.MarshalSynopsis(syn); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, Bmax)
		for b := 1; b <= Bmax; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				syn, err := fr.Synopsis(b)
				if err != nil {
					errs[b-1] = err
					return
				}
				got, err := probsyn.MarshalSynopsis(syn)
				if err != nil {
					errs[b-1] = err
					return
				}
				if !bytes.Equal(got, want[b-1]) {
					errs[b-1] = errBytesDiffer
				}
			}(b)
		}
		wg.Wait()
		for b, err := range errs {
			if err != nil {
				t.Fatalf("%s: concurrent extraction at budget %d: %v", name, b+1, err)
			}
		}
	}
}

var errBytesDiffer = errDiff{}

type errDiff struct{}

func (errDiff) Error() string { return "concurrent extraction bytes differ from serial extraction" }

// TestFrontierAcceptance is the PR's acceptance case: n=1024, Bmax=32,
// both wavelet DP families — every one of the 32 budgets extracted from
// one DP run is byte-identical to the corresponding single-budget build.
func TestFrontierAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1024 acceptance sweep skipped in -short mode")
	}
	src := sweepSource(1024)
	const Bmax = 32
	cases := map[string][]probsyn.BuildOption{
		"wavelet-restricted":   {probsyn.WithWavelet()},
		"wavelet-unrestricted": {probsyn.WithWavelet(), probsyn.WithUnrestricted(0)},
	}
	for name, opts := range cases {
		opts = append(opts, probsyn.WithParallelism(0)) // one worker per CPU
		fr, err := probsyn.BuildSweep(src, probsyn.SAE, Bmax, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for b := 1; b <= Bmax; b++ {
			syn, err := fr.Synopsis(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := probsyn.MarshalSynopsis(syn)
			if err != nil {
				t.Fatal(err)
			}
			indep, err := probsyn.Build(src, probsyn.SAE, b, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := probsyn.MarshalSynopsis(indep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: budget %d: swept bytes differ from single-budget build", name, b)
			}
		}
	}
}

// TestBuildSweepValidation: the approximate DP has no frontier, and
// histogram sweeps reject wavelet-only options.
func TestBuildSweepValidation(t *testing.T) {
	src := sweepSource(32)
	if _, err := probsyn.BuildSweep(src, probsyn.SSE, 0); err == nil {
		t.Fatal("Bmax 0 accepted")
	}
	if _, err := probsyn.BuildSweep(src, probsyn.SSE, 8, probsyn.WithEps(0.5)); err == nil {
		t.Fatal("eps-approximate sweep accepted")
	}
	if _, err := probsyn.BuildSweep(src, probsyn.SSE, 8, probsyn.WithUnrestricted(1)); err == nil {
		t.Fatal("unrestricted histogram sweep accepted")
	}
	// SSE wavelet sweeps ride the greedy frontier.
	fr, err := probsyn.BuildSweep(src, probsyn.SSE, 8, probsyn.WithWavelet())
	if err != nil {
		t.Fatal(err)
	}
	syn, err := fr.Synopsis(8)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := probsyn.SSEWavelet(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := probsyn.MarshalSynopsis(syn)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := probsyn.MarshalSynopsis(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatal("SSE wavelet sweep differs from greedy build")
	}
	// Workload-weighted histogram frontiers work: the weighted oracle
	// rides the same DP table.
	weights := make([]float64, src.Domain())
	for i := range weights {
		weights[i] = float64(1 + i%3)
	}
	wfr, err := probsyn.BuildSweep(src, probsyn.SSEFixed, 6, probsyn.WithWorkloadWeights(weights))
	if err != nil {
		t.Fatal(err)
	}
	wsyn, err := wfr.Synopsis(4)
	if err != nil {
		t.Fatal(err)
	}
	windep, err := probsyn.Build(src, probsyn.SSEFixed, 4, probsyn.WithWorkloadWeights(weights))
	if err != nil {
		t.Fatal(err)
	}
	wgb, err := probsyn.MarshalSynopsis(wsyn)
	if err != nil {
		t.Fatal(err)
	}
	wwb, err := probsyn.MarshalSynopsis(windep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wgb, wwb) {
		t.Fatal("workload-weighted sweep differs from independent build")
	}
}
