#!/usr/bin/env bash
# loadbench.sh — end-to-end HTTP load benchmark of the psynd read path.
#
# Usage: loadbench.sh [out.json]
#
# Builds the binaries, generates a dataset, starts psynd on an ephemeral
# port, builds histogram and wavelet synopses over HTTP, then drives the
# server with cmd/loadbench: single /v1/estimate, single /v1/rangesum,
# and 100-op mixed /v1/query batches. Results (qps, p50, p99 per
# scenario) land in out.json (default loadbench.json) in the
# bench_json.sh entry shape, so they merge into the same snapshot
# bench_gate.sh tracks.
#
# The script enforces the batch-amortization contract: a 100-op mixed
# batch must cost less than 5 single-estimate round trips at the median
# — otherwise /v1/query is not amortizing HTTP/JSON overhead and exists
# for nothing. (100 ops in < 5x one op = >= 20x per-op amortization.)
#
# A second leg starts a two-node cluster (-peers), builds a sharded
# synopsis spread across both nodes, and drives cross-shard gathered
# range sums through one coordinator. Gate: gathered p50 < 3x the
# single-node rangesum p50 — scatter/gather may cost a peer hop and a
# fan-out, not an order of magnitude.
#
# Environment:
#   LOADBENCH_DURATION  measurement window per scenario (default 2s)
#   LOADBENCH_CONNS     concurrent connections (default 4)
set -euo pipefail

OUT=${1:-loadbench.json}
DUR=${LOADBENCH_DURATION:-2s}
CONNS=${LOADBENCH_CONNS:-4}

WORK=$(mktemp -d)
PSYND_PIDS=()
cleanup() {
  for pid in "${PSYND_PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/bin/" ./cmd/...
mkdir -p "$WORK/data" "$WORK/catalog"
"$WORK/bin/datagen" -kind mystiq -n 256 -out "$WORK/data/ds.pd"

# Ephemeral port: psynd prints the bound address on stdout.
"$WORK/bin/psynd" -addr 127.0.0.1:0 -data "$WORK/data" -catalog "$WORK/catalog" \
  -max-builds 1 > "$WORK/psynd.log" 2>&1 &
PSYND_PIDS+=($!)
ADDR=""
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^psynd: listening on \([^ ]*\).*/\1/p' "$WORK/psynd.log")
  [ -n "$ADDR" ] && break
  sleep 0.2
done
if [ -z "$ADDR" ]; then
  echo "loadbench.sh: psynd did not start:" >&2
  cat "$WORK/psynd.log" >&2
  exit 1
fi

for family in histogram wavelet; do
  curl -sf -X POST "http://$ADDR/v1/build" \
    -d "{\"dataset\":\"ds\",\"family\":\"$family\",\"metric\":\"SSE\",\"budget\":8,\"wait\":true}" \
    | grep -q '"status":"built"'
done

"$WORK/bin/loadbench" -addr "http://$ADDR" -dataset ds -metric SSE -budget 8 \
  -domain 256 -duration "$DUR" -conns "$CONNS" -out "$OUT"
cat "$OUT"

# Batch-amortization gate: p50(QueryBatch100) < 5 * p50(Estimate).
awk '
  match($0, /"name": "[^"]+"/) { name = substr($0, RSTART + 9, RLENGTH - 10) }
  match($0, /"p50_ns": [0-9.eE+-]+/) { p50[name] = substr($0, RSTART + 10, RLENGTH - 10) }
  END {
    est = p50["LoadbenchEstimate"]; batch = p50["LoadbenchQueryBatch100"]
    if (est == "" || batch == "") { print "loadbench.sh: missing scenario results"; exit 1 }
    printf("batch amortization: 100-op batch p50 %.0f ns vs single estimate p50 %.0f ns (%.2fx)\n",
           batch, est, batch / est)
    if (batch >= 5 * est) {
      print "FAIL: 100-op /v1/query batch costs >= 5x a single estimate round trip"
      exit 1
    }
  }' "$OUT"

# ── Cluster leg: two-node scatter/gather ─────────────────────────────
# Peer addresses must be known before either node starts (the ring is
# derived from the shared list), so reserve two free ports up front.
read -r P1 P2 < <(python3 -c '
import socket
socks = [socket.socket() for _ in range(2)]
for s in socks: s.bind(("127.0.0.1", 0))
print(*(s.getsockname()[1] for s in socks))
for s in socks: s.close()')
A1="127.0.0.1:$P1" A2="127.0.0.1:$P2"
mkdir -p "$WORK/cat1" "$WORK/cat2"
for i in 1 2; do
  addr=$A1; [ "$i" = 2 ] && addr=$A2
  "$WORK/bin/psynd" -addr "$addr" -data "$WORK/data" -catalog "$WORK/cat$i" \
    -max-builds 1 -peers "$A1,$A2" > "$WORK/psynd$i.log" 2>&1 &
  PSYND_PIDS+=($!)
done
for i in 1 2; do
  ok=""
  for _ in $(seq 1 50); do
    grep -q "listening on" "$WORK/psynd$i.log" && ok=1 && break
    sleep 0.2
  done
  if [ -z "$ok" ]; then
    echo "loadbench.sh: cluster node $i did not start:" >&2
    cat "$WORK/psynd$i.log" >&2
    exit 1
  fi
done

# Unsharded builds feed the base scenarios; the sharded histogram build
# spreads its pieces across both nodes for the gather scenario. Builds
# forward to the dataset owner regardless of which node takes the POST.
for family in histogram wavelet; do
  curl -sf -X POST "http://$A1/v1/build" \
    -d "{\"dataset\":\"ds\",\"family\":\"$family\",\"metric\":\"SSE\",\"budget\":8,\"wait\":true}" \
    | grep -q '"status":"built"'
done
curl -sf -X POST "http://$A1/v1/build" \
  -d '{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"shards":2,"wait":true}' \
  | grep -q '"status":"built"'

# Unsharded reads only answer on the dataset owner (whole synopses are
# not replicated), so point loadbench at whichever node serves them.
TARGET=$A1
curl -sf "http://$A1/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=8&lo=0&hi=9" \
  > /dev/null 2>&1 || TARGET=$A2
"$WORK/bin/loadbench" -addr "http://$TARGET" -dataset ds -metric SSE -budget 8 \
  -domain 256 -duration "$DUR" -conns "$CONNS" -shards 2 -out "$WORK/cluster.json"

# Gate: gathered cross-shard p50 < 3x the single-node rangesum p50.
awk '
  match($0, /"name": "[^"]+"/) { name = substr($0, RSTART + 9, RLENGTH - 10) }
  match($0, /"p50_ns": [0-9.eE+-]+/) { p50[FILENAME "/" name] = substr($0, RSTART + 10, RLENGTH - 10) }
  END {
    single = ""; gather = ""
    for (k in p50) {
      if (k ~ /cluster\.json\/LoadbenchGatherRangeSum$/) gather = p50[k]
      else if (k !~ /cluster\.json\// && k ~ /\/LoadbenchRangeSum$/) single = p50[k]
    }
    if (single == "" || gather == "") { print "loadbench.sh: missing cluster scenario results"; exit 1 }
    printf("scatter/gather: cross-shard p50 %.0f ns vs single-node p50 %.0f ns (%.2fx)\n",
           gather, single, gather / single)
    if (gather >= 3 * single) {
      print "FAIL: gathered cross-shard range sums cost >= 3x single-node range sums"
      exit 1
    }
  }' "$OUT" "$WORK/cluster.json"

# Carry the gather scenario into the snapshot alongside the single-node
# results (the cluster run repeats the base scenarios; only its new
# entry merges, keeping names unique in the snapshot).
grep '"name": "LoadbenchGatherRangeSum"' "$WORK/cluster.json" \
  | sed -e '1i[' -e '$s/,$//' -e '$a]' > "$WORK/gather.json"
"$(dirname "$0")/json_concat.sh" "$WORK/merged.json" "$OUT" "$WORK/gather.json"
mv "$WORK/merged.json" "$OUT"
cat "$OUT"
