#!/usr/bin/env bash
# loadbench.sh — end-to-end HTTP load benchmark of the psynd read path.
#
# Usage: loadbench.sh [out.json]
#
# Builds the binaries, generates a dataset, starts psynd on an ephemeral
# port, builds histogram and wavelet synopses over HTTP, then drives the
# server with cmd/loadbench: single /v1/estimate, single /v1/rangesum,
# and 100-op mixed /v1/query batches. Results (qps, p50, p99 per
# scenario) land in out.json (default loadbench.json) in the
# bench_json.sh entry shape, so they merge into the same snapshot
# bench_gate.sh tracks.
#
# The script enforces the batch-amortization contract: a 100-op mixed
# batch must cost less than 5 single-estimate round trips at the median
# — otherwise /v1/query is not amortizing HTTP/JSON overhead and exists
# for nothing. (100 ops in < 5x one op = >= 20x per-op amortization.)
#
# Environment:
#   LOADBENCH_DURATION  measurement window per scenario (default 2s)
#   LOADBENCH_CONNS     concurrent connections (default 4)
set -euo pipefail

OUT=${1:-loadbench.json}
DUR=${LOADBENCH_DURATION:-2s}
CONNS=${LOADBENCH_CONNS:-4}

WORK=$(mktemp -d)
PSYND_PID=""
cleanup() {
  if [ -n "$PSYND_PID" ]; then
    kill -TERM "$PSYND_PID" 2>/dev/null || true
    wait "$PSYND_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/bin/" ./cmd/...
mkdir -p "$WORK/data" "$WORK/catalog"
"$WORK/bin/datagen" -kind mystiq -n 256 -out "$WORK/data/ds.pd"

# Ephemeral port: psynd prints the bound address on stdout.
"$WORK/bin/psynd" -addr 127.0.0.1:0 -data "$WORK/data" -catalog "$WORK/catalog" \
  -max-builds 1 > "$WORK/psynd.log" 2>&1 &
PSYND_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^psynd: listening on \([^ ]*\).*/\1/p' "$WORK/psynd.log")
  [ -n "$ADDR" ] && break
  sleep 0.2
done
if [ -z "$ADDR" ]; then
  echo "loadbench.sh: psynd did not start:" >&2
  cat "$WORK/psynd.log" >&2
  exit 1
fi

for family in histogram wavelet; do
  curl -sf -X POST "http://$ADDR/v1/build" \
    -d "{\"dataset\":\"ds\",\"family\":\"$family\",\"metric\":\"SSE\",\"budget\":8,\"wait\":true}" \
    | grep -q '"status":"built"'
done

"$WORK/bin/loadbench" -addr "http://$ADDR" -dataset ds -metric SSE -budget 8 \
  -domain 256 -duration "$DUR" -conns "$CONNS" -out "$OUT"
cat "$OUT"

# Batch-amortization gate: p50(QueryBatch100) < 5 * p50(Estimate).
awk '
  match($0, /"name": "[^"]+"/) { name = substr($0, RSTART + 9, RLENGTH - 10) }
  match($0, /"p50_ns": [0-9.eE+-]+/) { p50[name] = substr($0, RSTART + 10, RLENGTH - 10) }
  END {
    est = p50["LoadbenchEstimate"]; batch = p50["LoadbenchQueryBatch100"]
    if (est == "" || batch == "") { print "loadbench.sh: missing scenario results"; exit 1 }
    printf("batch amortization: 100-op batch p50 %.0f ns vs single estimate p50 %.0f ns (%.2fx)\n",
           batch, est, batch / est)
    if (batch >= 5 * est) {
      print "FAIL: 100-op /v1/query batch costs >= 5x a single estimate round trip"
      exit 1
    }
  }' "$OUT"
