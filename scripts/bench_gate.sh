#!/usr/bin/env bash
# bench_gate.sh — compare a fresh bench run against the committed
# baseline snapshot and fail on large regressions.
#
# Usage: bench_gate.sh <baseline.json> <fresh.json>
#
# Both files are bench_json.sh (or cmd/loadbench) output. For every
# benchmark present in BOTH files, the ns/op ratio fresh/baseline is
# checked:
#
#   > 2.0x  -> regression: reported and the script exits 1
#   > 1.3x  -> warning: reported, exit status unaffected
#
# Benchmarks below a noise floor (10 ms in the baseline) are skipped:
# CI runs the suite at -benchtime=1x, single-shot timings jitter far
# beyond any useful threshold at small scales, and the snapshot may
# come from a different machine class than the runner — the benches
# that matter for regression detection (figure sweeps, DP builds,
# frontier amortization) all run tens of milliseconds to seconds.
#
# Two rules are NOT subject to the noise floor, because they gate
# determinism, not timing:
#
#   allocs_per_op  — a baseline of 0 allocs/op is a zero-allocation
#                    contract (the serve hot path); any fresh run
#                    allocating breaks it and fails the gate. Alloc
#                    counts do not jitter.
#   cost_evals_per_op — the histogram DP benchmarks run on a serial
#                    pool, so the bucket-cost evaluation count is an
#                    exact, machine-independent function of the code;
#                    growth beyond 5% over the snapshot fails the gate
#                    (the pruned DP quietly refilling dense is exactly
#                    the regression wall-clock noise would hide).
#   p99_ns         — loadbench tail latency; a > 4.0x blowup is
#                    reported as a warning only (CI runner tails are
#                    too noisy to hard-gate).
#
# Benchmarks present in only one file (added or removed this PR) are
# listed but never gate. The thresholds are deliberately loose — this
# is a backstop against accidental algorithmic regressions (a DP going
# quadratic, a pool serializing, a hot path starting to allocate), not
# a microbenchmark tribunal.
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <baseline.json> <fresh.json>" >&2
  exit 2
fi
BASELINE=$1 FRESH=$2

# Flatten "name ns allocs p99" rows out of the one-object-per-line JSON
# bench_json.sh writes; missing optional fields become "-".
extract() {
  awk 'match($0, /"name": "[^"]+"/) {
         name = substr($0, RSTART + 9, RLENGTH - 10)
         ns = "-"; allocs = "-"; p99 = "-"; evals = "-"
         if (match($0, /"ns_per_op": [0-9.eE+-]+/))
           ns = substr($0, RSTART + 13, RLENGTH - 13)
         if (match($0, /"allocs_per_op": [0-9.eE+-]+/))
           allocs = substr($0, RSTART + 17, RLENGTH - 17)
         if (match($0, /"p99_ns": [0-9.eE+-]+/))
           p99 = substr($0, RSTART + 10, RLENGTH - 10)
         if (match($0, /"cost_evals_per_op": [0-9.eE+-]+/))
           evals = substr($0, RSTART + 21, RLENGTH - 21)
         if (ns != "-") print name, ns, allocs, p99, evals
       }' "$1"
}

extract "$BASELINE" > /tmp/bench_gate_base.$$
extract "$FRESH" > /tmp/bench_gate_fresh.$$
trap 'rm -f /tmp/bench_gate_base.$$ /tmp/bench_gate_fresh.$$' EXIT

# An empty side is a broken pipeline, never a pass. The comparison
# below separates the two inputs with NR == FNR, which degenerates when
# the baseline contributes zero lines: every fresh row would land in
# the baseline array and the gate would compare nothing, silently
# exiting 0 — precisely when a truncated snapshot or an empty bench run
# most needs to fail loudly.
if ! [ -s /tmp/bench_gate_base.$$ ]; then
  echo "bench gate: no benchmark entries in baseline $BASELINE" >&2
  exit 2
fi
if ! [ -s /tmp/bench_gate_fresh.$$ ]; then
  echo "bench gate: no benchmark entries in fresh run $FRESH" >&2
  exit 2
fi

# Every regression is reported before the gate exits — the END block is
# the only exit, so a PR that slows five benchmarks sees all five in
# one CI run instead of fixing them serially.
awk -v floor=10000000 '
  NR == FNR { base[$1] = $2; balloc[$1] = $3; bp99[$1] = $4; bevals[$1] = $5; next }
  {
    fresh[$1] = $2
    if (!($1 in base)) { added++; next }

    # Zero-allocation contract: never skipped, allocs are exact.
    if (balloc[$1] == "0" && $3 != "-" && $3 + 0 > 0) {
      printf("ALLOC REGRESSION %s: 0 -> %s allocs/op (hot path now allocates)\n", $1, $3)
      bad++
    }

    # DP work counter: exact on the serial benchmark pool, so it is
    # never skipped as noise; > 1.05x means the pruning got weaker.
    if (bevals[$1] != "-" && bevals[$1] + 0 > 0 && $5 != "-" && $5 / bevals[$1] > 1.05) {
      printf("COST-EVAL REGRESSION %s: %.0f -> %.0f cost evals/op (%.2fx)\n", $1, bevals[$1], $5, $5 / bevals[$1])
      bad++
    }

    # Tail latency: warn only.
    if (bp99[$1] != "-" && bp99[$1] + 0 > 0 && $4 != "-" && $4 / bp99[$1] > 4.0)
      printf("warning    %s: p99 %.0f -> %.0f ns (%.2fx)\n", $1, bp99[$1], $4, $4 / bp99[$1])

    if (base[$1] < floor) { skipped++; next }
    ratio = $2 / base[$1]
    if (ratio > 2.0) {
      printf("REGRESSION %s: %.0f -> %.0f ns/op (%.2fx)\n", $1, base[$1], $2, ratio)
      bad++
    } else if (ratio > 1.3) {
      printf("warning    %s: %.0f -> %.0f ns/op (%.2fx)\n", $1, base[$1], $2, ratio)
      warned++
    }
  }
  END {
    for (n in base) if (!(n in fresh)) removed++
    printf("bench gate: %d compared, %d below noise floor, %d added, %d removed, %d warnings, %d regressions\n",
           FNR - added, skipped, added, removed, warned, bad)
    if (bad > 0) exit 1
  }' /tmp/bench_gate_base.$$ /tmp/bench_gate_fresh.$$
