#!/usr/bin/env bash
# json_concat.sh — concatenate JSON arrays written one entry per line
# (bench_json.sh and cmd/loadbench output) into a single array, so the
# go-test benchmark results and the loadbench HTTP results land in one
# snapshot for bench_gate.sh.
#
# Usage: json_concat.sh <out.json> <in.json>...
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 <out.json> <in.json>..." >&2
  exit 2
fi
OUT=$1
shift

{
  echo "["
  for f in "$@"; do
    # Drop the surrounding brackets, normalize indentation, and give
    # every entry a trailing comma; the last comma is stripped below.
    awk '/^\[[[:space:]]*$/ { next }
         /^\][[:space:]]*$/ { next }
         /\{/ { sub(/^[[:space:]]+/, ""); sub(/,[[:space:]]*$/, ""); print "  " $0 "," }' "$f"
  done | sed '$ s/,$//'
  echo "]"
} > "$OUT"
