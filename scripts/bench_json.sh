#!/usr/bin/env bash
# bench_json.sh — parse `go test -bench` output into a JSON array.
#
# Usage: bench_json.sh <bench.out> <out.json>
#
# Each "BenchmarkName-P  iters  ns/op ..." line becomes
#   {"name": "BenchmarkName", "iters": N, "ns_per_op": X}
# with the trailing -P GOMAXPROCS suffix stripped, so snapshots taken on
# machines with different core counts compare by name (bench_gate.sh
# relies on this).
#
# When the run used -benchmem, the "B/op" and "allocs/op" columns are
# carried as "bytes_per_op" and "allocs_per_op" — bench_gate.sh uses
# allocs_per_op to pin zero-allocation hot paths at zero. The columns
# are located by their unit labels, not fixed positions, so lines with
# extra metrics (MB/s) still parse. The DP benchmarks report the exact
# bucket-cost evaluation count via b.ReportMetric as "cost-evals/op";
# it is carried as "cost_evals_per_op" so the gate can pin the pruned
# DP's output-sensitivity, not just its wall clock.
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <bench.out> <out.json>" >&2
  exit 2
fi

awk 'BEGIN { print "["; first = 1 }
     /^Benchmark/ && NF >= 3 {
       name = $1
       sub(/-[0-9]+$/, "", name)
       if (!first) printf(",\n")
       first = 0
       printf("  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, $3)
       for (i = 4; i <= NF; i++) {
         if ($i == "B/op")      printf(", \"bytes_per_op\": %s", $(i-1))
         if ($i == "allocs/op") printf(", \"allocs_per_op\": %s", $(i-1))
         if ($i == "cost-evals/op") printf(", \"cost_evals_per_op\": %s", $(i-1))
       }
       printf("}")
     }
     END { print "\n]" }' "$1" > "$2"
