#!/usr/bin/env bash
# bench_gate_test.sh — fixture tests for bench_gate.sh.
#
# Usage: bench_gate_test.sh
#
# Runs the gate against hand-written baseline/fresh JSON pairs and
# asserts the exit status and the report contents: every regression in
# a run is reported (not just the first), the zero-allocation contract
# fires regardless of the noise floor, sub-floor timings are skipped,
# and an empty side fails loudly instead of comparing nothing. CI runs
# this before trusting the real gate.
set -euo pipefail

cd "$(dirname "$0")/.."
GATE=scripts/bench_gate.sh
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "bench_gate_test: FAIL: $*" >&2
  exit 1
}

# run <expected_status> <baseline> <fresh>: run the gate, capture
# combined output in $out, assert the exit status.
run() {
  local want=$1 status=0
  out=$("$GATE" "$2" "$3" 2>&1) || status=$?
  if [ "$status" -ne "$want" ]; then
    fail "exit $status, want $want ($2 vs $3); output: $out"
  fi
}

# Case 1: two independent >2x regressions on slow benchmarks plus an
# alloc regression — all three must appear in one report.
cat > "$TMP/base.json" <<'EOF'
[
  {"name": "BenchmarkSlowA", "iters": 1, "ns_per_op": 20000000},
  {"name": "BenchmarkSlowB", "iters": 1, "ns_per_op": 30000000},
  {"name": "BenchmarkHot", "iters": 1, "ns_per_op": 500, "allocs_per_op": 0},
  {"name": "BenchmarkFine", "iters": 1, "ns_per_op": 50000000}
]
EOF
cat > "$TMP/fresh.json" <<'EOF'
[
  {"name": "BenchmarkSlowA", "iters": 1, "ns_per_op": 50000000},
  {"name": "BenchmarkSlowB", "iters": 1, "ns_per_op": 90000000},
  {"name": "BenchmarkHot", "iters": 1, "ns_per_op": 600, "allocs_per_op": 3},
  {"name": "BenchmarkFine", "iters": 1, "ns_per_op": 51000000}
]
EOF
run 1 "$TMP/base.json" "$TMP/fresh.json"
echo "$out" | grep -q 'REGRESSION BenchmarkSlowA' || fail "SlowA regression not reported: $out"
echo "$out" | grep -q 'REGRESSION BenchmarkSlowB' || fail "SlowB regression not reported: $out"
echo "$out" | grep -q 'ALLOC REGRESSION BenchmarkHot' || fail "alloc regression not reported: $out"
echo "$out" | grep -q '3 regressions' || fail "summary did not count all regressions: $out"
echo "$out" | grep -q 'REGRESSION BenchmarkFine' && fail "in-threshold bench flagged: $out"

# Case 2: the same timings pass when within threshold; a sub-floor
# bench regressing 100x is noise, not a failure.
cat > "$TMP/fresh_ok.json" <<'EOF'
[
  {"name": "BenchmarkSlowA", "iters": 1, "ns_per_op": 21000000},
  {"name": "BenchmarkSlowB", "iters": 1, "ns_per_op": 31000000},
  {"name": "BenchmarkHot", "iters": 1, "ns_per_op": 50000, "allocs_per_op": 0},
  {"name": "BenchmarkFine", "iters": 1, "ns_per_op": 50000000}
]
EOF
run 0 "$TMP/base.json" "$TMP/fresh_ok.json"

# Case 3: an empty baseline is a pipeline failure (exit 2), never a
# silent pass — this is the NR == FNR degenerate case.
echo '[]' > "$TMP/empty.json"
run 2 "$TMP/empty.json" "$TMP/fresh.json"
echo "$out" | grep -q 'no benchmark entries in baseline' || fail "empty baseline not diagnosed: $out"

# Case 4: an empty fresh run likewise.
run 2 "$TMP/base.json" "$TMP/empty.json"
echo "$out" | grep -q 'no benchmark entries in fresh run' || fail "empty fresh run not diagnosed: $out"

# Case 5: the cost-evals counter gates exactly — a sub-floor DP bench
# whose eval count grows > 5% fails even though its timing is noise,
# and an unchanged count passes at any timing.
cat > "$TMP/base_evals.json" <<'EOF2'
[
  {"name": "BenchmarkHistDPPruned/n=2048", "iters": 1, "ns_per_op": 5000000, "cost_evals_per_op": 100000}
]
EOF2
cat > "$TMP/fresh_evals_bad.json" <<'EOF2'
[
  {"name": "BenchmarkHistDPPruned/n=2048", "iters": 1, "ns_per_op": 4000000, "cost_evals_per_op": 180000}
]
EOF2
run 1 "$TMP/base_evals.json" "$TMP/fresh_evals_bad.json"
echo "$out" | grep -q 'COST-EVAL REGRESSION' || fail "cost-eval regression not reported: $out"
cat > "$TMP/fresh_evals_ok.json" <<'EOF2'
[
  {"name": "BenchmarkHistDPPruned/n=2048", "iters": 1, "ns_per_op": 9000000, "cost_evals_per_op": 100000}
]
EOF2
run 0 "$TMP/base_evals.json" "$TMP/fresh_evals_ok.json"

# Case 6: added/removed benchmarks are listed in the summary but never
# gate.
cat > "$TMP/fresh_new.json" <<'EOF'
[
  {"name": "BenchmarkSlowA", "iters": 1, "ns_per_op": 21000000},
  {"name": "BenchmarkSlowB", "iters": 1, "ns_per_op": 31000000},
  {"name": "BenchmarkHot", "iters": 1, "ns_per_op": 50000, "allocs_per_op": 0},
  {"name": "BenchmarkBrandNew", "iters": 1, "ns_per_op": 99000000}
]
EOF
run 0 "$TMP/base.json" "$TMP/fresh_new.json"
echo "$out" | grep -q '1 added, 1 removed' || fail "added/removed counts wrong: $out"

echo "bench_gate_test: PASS"
