package probsyn_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"probsyn"
	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/ptest"
)

func randomValuePDF(n int, seed int64) *probsyn.ValuePDF {
	return ptest.RandomValuePDF(rand.New(rand.NewSource(seed)), n, 3)
}

// The sharded SSE wavelet merge is exact: WithShards(k) must produce a
// synopsis byte-identical (through the codec) to the unsharded build.
func TestBuildShardsSSEWaveletBitIdentical(t *testing.T) {
	src := randomValuePDF(48, 3)
	want, err := probsyn.Build(src, probsyn.SSE, 9, probsyn.WithWavelet())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := probsyn.MarshalSynopsis(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		got, err := probsyn.Build(src, probsyn.SSE, 9,
			probsyn.WithWavelet(), probsyn.WithShards(k), probsyn.WithParallelism(runtime.NumCPU()))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		gotBytes, err := probsyn.MarshalSynopsis(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("k=%d: sharded SSE wavelet differs from unsharded build", k)
		}
	}
}

// DP families under WithShards stay within the certified bound of the
// unsharded optimum, and BuildSharded surfaces that bound.
func TestBuildShardedWithinBound(t *testing.T) {
	cases := []struct {
		name string
		m    probsyn.Metric
		opts []probsyn.BuildOption
		n, k int
	}{
		{"hist-SSE", probsyn.SSE, nil, 26, 3},
		{"hist-MAE", probsyn.MAE, nil, 26, 4},
		{"wavelet-SAE", probsyn.SAE, []probsyn.BuildOption{probsyn.WithWavelet()}, 32, 4},
		{"wavelet-SSEFixed", probsyn.SSEFixed, []probsyn.BuildOption{probsyn.WithWavelet()}, 32, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := randomValuePDF(tc.n, 11)
			const B = 8
			res, err := probsyn.BuildSharded(src, tc.m, B, tc.k, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Pieces) != tc.k || len(res.Bounds) != tc.k+1 {
				t.Fatalf("%d pieces, %d bounds for k=%d", len(res.Pieces), len(res.Bounds), tc.k)
			}
			wavelet := len(tc.opts) > 0
			wantBounds := probsyn.ShardBounds(tc.n, tc.k, wavelet)
			for i, b := range res.Bounds {
				if b != wantBounds[i] {
					t.Fatalf("bounds %v, want %v", res.Bounds, wantBounds)
				}
			}
			// SSEFixed wavelet routes to the exact greedy merge.
			if tc.name == "wavelet-SSEFixed" && res.Bound != 0 {
				t.Fatalf("SSE-family sharded bound = %v, want 0", res.Bound)
			}
			opt, err := probsyn.Build(src, tc.m, B, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			tol := 1e-9 * math.Max(1, opt.ErrorCost())
			if res.Synopsis.ErrorCost() < opt.ErrorCost()-tol {
				t.Fatalf("sharded cost %v below optimum %v", res.Synopsis.ErrorCost(), opt.ErrorCost())
			}
			if res.Synopsis.ErrorCost() > opt.ErrorCost()+res.Bound+tol {
				t.Fatalf("sharded cost %v exceeds optimum %v + bound %v",
					res.Synopsis.ErrorCost(), opt.ErrorCost(), res.Bound)
			}
			// WithShards(k) through Build returns the same merged synopsis.
			syn, err := probsyn.Build(src, tc.m, B, append(tc.opts[:len(tc.opts):len(tc.opts)], probsyn.WithShards(tc.k))...)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := probsyn.MarshalSynopsis(syn)
			b, _ := probsyn.MarshalSynopsis(res.Synopsis)
			if !bytes.Equal(a, b) {
				t.Fatal("Build(WithShards) differs from BuildSharded merged synopsis")
			}
		})
	}
}

// Pieces must answer range sums: summing the per-shard partials over the
// shard split of a global range reproduces the merged synopsis's answer
// — the invariant the scatter/gather server path relies on.
func TestBuildShardedPiecesAnswerRangeSums(t *testing.T) {
	src := randomValuePDF(32, 17)
	for _, tc := range []struct {
		m    probsyn.Metric
		opts []probsyn.BuildOption
	}{
		{probsyn.SSE, []probsyn.BuildOption{probsyn.WithWavelet()}},
		{probsyn.SAE, []probsyn.BuildOption{probsyn.WithWavelet()}},
		{probsyn.SSE, nil},
	} {
		res, err := probsyn.BuildSharded(src, tc.m, 10, 4, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range [][2]int{{0, 32}, {3, 29}, {7, 9}, {0, 1}, {15, 17}} {
			lo, hi := r[0], r[1]
			want := res.Synopsis.RangeSum(lo, hi)
			var got float64
			for s := 0; s+1 < len(res.Bounds); s++ {
				a, b := max(lo, res.Bounds[s]), min(hi, res.Bounds[s+1])
				if a < b {
					got += res.Pieces[s].RangeSum(a-res.Bounds[s], b-res.Bounds[s])
				}
			}
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("%v [%d,%d): gathered %v, merged %v", tc.m, lo, hi, got, want)
			}
		}
	}
}

// Quantized sharded restricted builds through the root API stay within
// the surfaced bound of the exact unsharded optimum.
func TestBuildShardedQuantizedWithinBound(t *testing.T) {
	src := randomValuePDF(64, 23)
	res, err := probsyn.BuildSharded(src, probsyn.SAE, 12, 4,
		probsyn.WithWavelet(), probsyn.WithQuantize(4))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := probsyn.Build(src, probsyn.SAE, 12, probsyn.WithWavelet())
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-9 * math.Max(1, opt.ErrorCost())
	if res.Synopsis.ErrorCost() < opt.ErrorCost()-tol {
		t.Fatalf("cost %v below optimum %v", res.Synopsis.ErrorCost(), opt.ErrorCost())
	}
	if res.Synopsis.ErrorCost() > opt.ErrorCost()+res.Bound+tol {
		t.Fatalf("cost %v exceeds optimum %v + bound %v", res.Synopsis.ErrorCost(), opt.ErrorCost(), res.Bound)
	}
}

// Workload-weighted histograms shard by slicing the weights.
func TestBuildShardedWorkloadHistogram(t *testing.T) {
	src := randomValuePDF(24, 29)
	weights := make([]float64, 24)
	rng := rand.New(rand.NewSource(31))
	for i := range weights {
		weights[i] = 1 + rng.Float64()
	}
	res, err := probsyn.BuildSharded(src, probsyn.SSEFixed, 6, 3, probsyn.WithWorkloadWeights(weights))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := probsyn.WorkloadHistogram(src, weights, 6)
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-9 * math.Max(1, opt.Cost)
	if res.Synopsis.ErrorCost() < opt.Cost-tol || res.Synopsis.ErrorCost() > opt.Cost+res.Bound+tol {
		t.Fatalf("sharded workload cost %v outside [opt, opt+bound] = [%v, %v]",
			res.Synopsis.ErrorCost(), opt.Cost, opt.Cost+res.Bound)
	}
}

// A capped pool admits a sharded build with fewer tokens than shards
// (degrading the fan) rather than deadlocking, and the result is
// bit-identical to the uncapped build.
func TestBuildShardedCappedPoolDegrades(t *testing.T) {
	src := randomValuePDF(32, 37)
	want, err := probsyn.BuildSharded(src, probsyn.SAE, 8, 4, probsyn.WithWavelet())
	if err != nil {
		t.Fatal(err)
	}
	pool := engine.New(engine.Options{Workers: 2, Grain: 1, MaxBuilds: 1})
	got, err := probsyn.BuildSharded(src, probsyn.SAE, 8, 4, probsyn.WithWavelet(), probsyn.WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := probsyn.MarshalSynopsis(want.Synopsis)
	b, _ := probsyn.MarshalSynopsis(got.Synopsis)
	if !bytes.Equal(a, b) || got.Bound != want.Bound {
		t.Fatal("capped-pool sharded build differs from uncapped")
	}
}

func TestBuildShardedArgumentErrors(t *testing.T) {
	src := randomValuePDF(16, 41)
	if _, err := probsyn.BuildSharded(src, probsyn.SAE, 8, 3, probsyn.WithWavelet()); err == nil {
		t.Fatal("non-power-of-two wavelet shard count accepted")
	}
	if _, err := probsyn.BuildSharded(src, probsyn.SAE, 2, 4, probsyn.WithWavelet()); err == nil {
		t.Fatal("B < k accepted")
	}
	if _, err := probsyn.BuildSharded(src, probsyn.SSE, 8, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := probsyn.BuildSharded(src, probsyn.SSE, 8, 2, probsyn.WithEps(0.1)); err == nil {
		t.Fatal("WithEps accepted")
	}
	if _, err := probsyn.BuildSharded(src, probsyn.SAE, 8, 2, probsyn.WithWavelet(), probsyn.WithUnrestricted(2)); err == nil {
		t.Fatal("WithUnrestricted accepted")
	}
	if _, err := probsyn.BuildSharded(src, probsyn.SSE, 8, 2, probsyn.WithShards(2)); err == nil {
		t.Fatal("WithShards inside BuildSharded accepted")
	}
	if _, err := probsyn.BuildSharded(src, probsyn.SSE, 8, 32); err == nil {
		t.Fatal("k > n histogram accepted")
	}
}

// TestBuildShardedPrunedByteIdenticalToDense: a sharded histogram build
// with the pruned DP (the default) must produce a merged synopsis and
// per-shard pieces codec-byte-identical to the same build with the dense
// reference path forced, and the WithDPStats sink must account the work
// of all shards.
func TestBuildShardedPrunedByteIdenticalToDense(t *testing.T) {
	src := randomValuePDF(40, 29)
	t.Setenv(hist.DenseDPEnv, "")
	os.Unsetenv(hist.DenseDPEnv)
	for _, m := range []probsyn.Metric{probsyn.SSE, probsyn.SARE, probsyn.MAE} {
		var st probsyn.DPStats
		pruned, err := probsyn.BuildSharded(src, m, 9, 3, probsyn.WithDPStats(&st))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if st.CandidatesScanned+st.CandidatesPruned == 0 {
			t.Fatalf("%v: WithDPStats sink not filled by the sharded build", m)
		}
		os.Setenv(hist.DenseDPEnv, "1")
		var dst probsyn.DPStats
		dense, err := probsyn.BuildSharded(src, m, 9, 3, probsyn.WithDPStats(&dst))
		os.Unsetenv(hist.DenseDPEnv)
		if err != nil {
			t.Fatalf("%v: dense: %v", m, err)
		}
		if dst.CandidatesPruned != 0 {
			t.Fatalf("%v: dense reference pruned %d candidates", m, dst.CandidatesPruned)
		}
		pb, err := probsyn.MarshalSynopsis(pruned.Synopsis)
		if err != nil {
			t.Fatal(err)
		}
		db, err := probsyn.MarshalSynopsis(dense.Synopsis)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb, db) {
			t.Fatalf("%v: pruned merged synopsis bytes differ from dense", m)
		}
		for s := range pruned.Pieces {
			pb, err := probsyn.MarshalSynopsis(pruned.Pieces[s])
			if err != nil {
				t.Fatal(err)
			}
			db, err := probsyn.MarshalSynopsis(dense.Pieces[s])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb, db) {
				t.Fatalf("%v: shard %d piece bytes differ between pruned and dense", m, s)
			}
		}
	}
}
