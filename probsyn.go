// Package probsyn builds histogram and wavelet synopses over probabilistic
// (uncertain) data, implementing Cormode & Garofalakis, "Histograms and
// Wavelets on Probabilistic Data" (ICDE 2009).
//
// A probabilistic relation assigns each tuple a probability distribution —
// the basic, tuple pdf, and value pdf models — and thereby defines a
// distribution over exponentially many possible worlds. probsyn constructs
// B-term synopses minimizing the expected approximation error over those
// worlds, for the standard error objectives:
//
//   - histograms: SSE (Eq. 5 of the paper), fixed-representative SSE,
//     SSRE, SAE, SARE (cumulative) and MAE, MARE (maximum), each optimal
//     via dynamic programming over O(1)/O(polylog)-time bucket-cost
//     oracles, plus a (1+eps)-approximate DP and an equi-depth heuristic;
//   - wavelets: the expected-SSE-optimal B-term Haar synopsis, and the
//     restricted coefficient-tree DP for non-SSE metrics.
//
// Quick start:
//
//	data := probsyn.Deterministic([]float64{2, 2, 0, 2, 3, 5, 4, 4})
//	h, _ := probsyn.OptimalHistogram(data, probsyn.SSE, probsyn.DefaultParams(), 3)
//	fmt.Println(h.Estimate(4), h.Cost)
//
// Both families implement the shared Synopsis interface (point estimates,
// range sums, term count, expected error) and serialize through a
// versioned binary/JSON codec (MarshalSynopsis, UnmarshalSynopsis). The
// unified constructor Build selects family, exact vs approximate DP,
// workload weighting, and DP parallelism through functional options; the
// named constructors below are thin wrappers over it.
//
// All construction functions accept any of the three data models through
// the Source interface. See DESIGN.md for the system inventory, the
// synopsis layer, and the reproduction of the paper's evaluation
// (cmd/experiments).
package probsyn

import (
	"io"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/textio"
	"probsyn/internal/wavelet"
)

// Data model types (see §2.1 of the paper).
type (
	// Source is any probabilistic relation over an ordered domain [0, n).
	Source = pdata.Source
	// Basic is the basic model: independent ⟨item, probability⟩ tuples.
	Basic = pdata.Basic
	// BasicTuple is one tuple of the basic model.
	BasicTuple = pdata.BasicTuple
	// TuplePDF is the tuple pdf model: per-tuple pdfs over mutually
	// exclusive alternative items.
	TuplePDF = pdata.TuplePDF
	// Tuple is one uncertain tuple of the tuple pdf model.
	Tuple = pdata.Tuple
	// Alternative is one (item, probability) alternative of a Tuple.
	Alternative = pdata.Alternative
	// ValuePDF is the value pdf model: independent per-item frequency pdfs.
	ValuePDF = pdata.ValuePDF
	// ItemPDF is one item's frequency distribution.
	ItemPDF = pdata.ItemPDF
	// FreqProb is one (frequency, probability) entry of an ItemPDF.
	FreqProb = pdata.FreqProb
)

// Synopsis types.
type (
	// Histogram is a B-bucket piecewise-constant synopsis.
	Histogram = hist.Histogram
	// Bucket is one histogram bucket.
	Bucket = hist.Bucket
	// WaveletSynopsis is a sparse set of retained Haar coefficients.
	WaveletSynopsis = wavelet.Synopsis
	// WaveletSSEReport is the exact expected-SSE accounting of an
	// SSE-optimal wavelet synopsis.
	WaveletSSEReport = wavelet.SSEReport
)

// Metric identifies an error objective; Params carries the sanity constant
// c of the relative-error metrics.
type (
	Metric = metric.Kind
	Params = metric.Params
)

// DPStats counts the work a histogram DP performed — split candidates
// scanned vs. monotonicity-pruned, and bucket-cost evaluations. Collect
// it with WithDPStats; see the hist package for field semantics. The
// tables (and codec bytes) a build produces are bit-identical whether or
// not pruning engages; the stats are schedule-dependent observability.
type DPStats = hist.DPStats

// The error objectives (§2.2-2.3; see the metric package for semantics).
const (
	SSE      = metric.SSE
	SSEFixed = metric.SSEFixed
	SSRE     = metric.SSRE
	SAE      = metric.SAE
	SARE     = metric.SARE
	MAE      = metric.MAE
	MARE     = metric.MARE
)

// DefaultParams returns the paper's mid-range sanity constant c = 0.5.
func DefaultParams() Params { return metric.DefaultParams() }

// ParseMetric resolves a metric name ("SSE", "SSRE", "SAE", ...).
func ParseMetric(s string) (Metric, error) { return metric.Parse(s) }

// Deterministic wraps certain (non-probabilistic) frequencies as a value
// pdf with unit probabilities, so deterministic data flows through the same
// algorithms.
func Deterministic(freqs []float64) *ValuePDF { return pdata.Deterministic(freqs) }

// OptimalHistogram builds the error-optimal B-bucket histogram for the
// metric over any probabilistic source (Theorems 1-4 and 6 of the paper).
// It is shorthand for Build(src, m, B, WithParams(p)).
func OptimalHistogram(src Source, m Metric, p Params, B int) (*Histogram, error) {
	s, err := Build(src, m, B, WithParams(p))
	if err != nil {
		return nil, err
	}
	return s.(*Histogram), nil
}

// ApproxHistogram builds a (1+eps)-approximate B-bucket histogram for a
// cumulative metric (Theorem 5), trading accuracy for a much smaller
// search. It is shorthand for Build(src, m, B, WithParams(p), WithEps(eps)).
func ApproxHistogram(src Source, m Metric, p Params, B int, eps float64) (*Histogram, error) {
	s, err := Build(src, m, B, WithParams(p), WithEps(eps))
	if err != nil {
		return nil, err
	}
	return s.(*Histogram), nil
}

// EquiDepthHistogram builds the B-bucket equi-depth histogram over expected
// frequencies, priced under the given metric — the classic quantile
// heuristic as a comparison point.
func EquiDepthHistogram(src Source, m Metric, p Params, B int) (*Histogram, error) {
	o, err := hist.NewOracle(src, m, p)
	if err != nil {
		return nil, err
	}
	return hist.EquiDepth(src.ExpectedFreqs(), o, B)
}

// SSEWavelet builds the expected-SSE-optimal B-term Haar wavelet synopsis
// (Theorem 7) together with its exact error accounting. The domain is
// zero-padded to a power of two.
func SSEWavelet(src Source, B int) (*WaveletSynopsis, *WaveletSSEReport, error) {
	return wavelet.BuildSSE(src, B)
}

// RestrictedWavelet builds the optimal restricted (coefficients fixed to
// their expected values) B-term wavelet synopsis for a non-SSE metric
// (Theorem 8), returning the synopsis and its expected error. It is
// single-threaded; Build(src, m, B, WithWavelet(), WithParallelism(k))
// runs the same DP across k workers with a bit-identical result.
func RestrictedWavelet(src Source, m Metric, p Params, B int) (*WaveletSynopsis, float64, error) {
	return wavelet.BuildRestricted(src, m, p, B)
}

// UnrestrictedWavelet builds a B-term wavelet synopsis for a non-SSE
// metric with retained coefficient values optimized over quantized
// candidate ranges (2q grid points plus the expected value per
// coefficient) — the unrestricted thresholding problem the paper's §4.2
// defers, implemented via its "bound and quantize" sketch. Never worse
// than RestrictedWavelet; exponentially more expensive in q and log n, so
// intended for small domains.
func UnrestrictedWavelet(src Source, m Metric, p Params, B, q int) (*WaveletSynopsis, float64, error) {
	return wavelet.BuildUnrestricted(src, m, p, B, q)
}

// WorkloadHistogram builds the optimal B-bucket histogram under
// query-workload-weighted expected squared error: weights[i] is the
// access frequency of point queries on item i (the non-uniform-workload
// extension the paper's concluding remarks pose). Uniform weights reduce
// to the SSEFixed objective. It is shorthand for
// Build(src, SSEFixed, B, WithWorkloadWeights(weights)).
func WorkloadHistogram(src Source, weights []float64, B int) (*Histogram, error) {
	s, err := Build(src, SSEFixed, B, WithWorkloadWeights(weights))
	if err != nil {
		return nil, err
	}
	return s.(*Histogram), nil
}

// ExpectedSSE returns the exact expected sum-squared error of an arbitrary
// wavelet synopsis over the source.
func ExpectedSSE(src Source, syn *WaveletSynopsis) float64 {
	return wavelet.ExpectedSSEOf(src, syn)
}

// ReadDataset parses a dataset in the probsyn text format.
func ReadDataset(r io.Reader) (Source, error) { return textio.Read(r) }

// WriteDataset serializes a dataset in the probsyn text format.
func WriteDataset(w io.Writer, src Source) error { return textio.Write(w, src) }
