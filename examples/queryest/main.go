// Queryest: use probabilistic synopses for approximate query answering —
// estimate expected range-counts over an uncertain TPC-H-style relation
// (tuple pdf model) from a histogram and a wavelet synopsis, and check the
// estimates against the exact expected answer and a Monte Carlo ground
// truth. This is the "fast approximate query processing" use case the
// paper's introduction motivates.
//
// Run with: go run ./examples/queryest
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probsyn"
	"probsyn/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	const n, m = 2048, 8192
	lineitem := gen.TPCHLineitem(rng, gen.DefaultTPCH(n, m))
	fmt.Printf("uncertain lineitem-partkey: %d partkeys, %d uncertain tuples\n", n, m)

	// Build both families through the unified entry point: same source,
	// same budget, same expected-SSE objective — one returns buckets, the
	// other retained Haar coefficients, and both serve queries behind the
	// shared Synopsis interface. The histogram DP fans out across CPUs.
	const B = 32
	h, err := probsyn.Build(lineitem, probsyn.SSE, B, probsyn.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	syn, err := probsyn.Build(lineitem, probsyn.SSE, B, probsyn.WithWavelet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopses: %d-bucket SSE histogram, %d-term wavelet\n\n", h.Terms(), syn.Terms())

	exact := lineitem.ExpectedFreqs()
	queries := [][2]int{{0, 255}, {256, 1023}, {100, 140}, {1024, 2047}, {1500, 1600}}

	// Monte Carlo ground truth: the expected count over sampled worlds
	// (matches the analytic expectation; shown to make the possible-worlds
	// semantics concrete).
	const samples = 2000
	mc := make([]float64, len(queries))
	freqs := make([]float64, n)
	for s := 0; s < samples; s++ {
		lineitem.SampleInto(rng, freqs)
		for qi, q := range queries {
			for i := q[0]; i <= q[1]; i++ {
				mc[qi] += freqs[i]
			}
		}
	}

	fmt.Println("expected range-count COUNT(partkey in [lo,hi]):")
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "range", "exact", "monteCarlo", "histogram", "wavelet")
	for qi, q := range queries {
		truth := 0.0
		for i := q[0]; i <= q[1]; i++ {
			truth += exact[i]
		}
		fmt.Printf("[%4d..%4d] %10.1f %10.1f %10.1f %10.1f\n",
			q[0], q[1], truth, mc[qi]/samples, h.RangeSum(q[0], q[1]), syn.RangeSum(q[0], q[1]))
	}

	// Point estimates: per-partkey expected multiplicity.
	fmt.Println("\nper-partkey expected multiplicity (first 8 partkeys):")
	fmt.Printf("%-8s %10s %10s %10s\n", "partkey", "exact", "histogram", "wavelet")
	for i := 0; i < 8; i++ {
		fmt.Printf("%-8d %10.3f %10.3f %10.3f\n", i, exact[i], h.Estimate(i), syn.Estimate(i))
	}
}
