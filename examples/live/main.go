// Live maintenance: build both synopsis families as live frontiers over
// an uncertain relation, absorb a batch of appended items and an
// in-place correction without rebuilding, and print the before/after
// cost frontiers. Every extraction from a live frontier is byte-identical
// to a from-scratch BuildSweep over the current data — the append just
// costs a fraction of one.
//
// Run with: go run ./examples/live
package main

import (
	"fmt"
	"log"

	"probsyn"
)

func main() {
	// A 24-item relation (three plateaus of uncertain readings).
	vp := &probsyn.ValuePDF{N: 24, Items: make([]probsyn.ItemPDF, 24)}
	level := func(base float64) probsyn.ItemPDF {
		return probsyn.ItemPDF{Entries: []probsyn.FreqProb{
			{Freq: base - 1, Prob: 0.25},
			{Freq: base, Prob: 0.5},
			{Freq: base + 1, Prob: 0.2},
		}}
	}
	for i := 0; i < 24; i++ {
		switch {
		case i < 10:
			vp.Items[i] = level(8)
		case i < 18:
			vp.Items[i] = level(3)
		default:
			vp.Items[i] = level(20)
		}
	}
	// Item 4's reading is a single uncertain observation with an exactly
	// representable mean (0.5·8 = 4), so the correction below can
	// preserve it bit-for-bit.
	vp.Items[4] = probsyn.ItemPDF{Entries: []probsyn.FreqProb{{Freq: 8, Prob: 0.5}}}
	if err := vp.Validate(); err != nil {
		log.Fatal(err)
	}

	const B = 6
	hist, err := probsyn.BuildLive(vp, probsyn.SSE, B)
	if err != nil {
		log.Fatal(err)
	}
	wave, err := probsyn.BuildLive(vp, probsyn.SAE, B, probsyn.WithWavelet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built live frontiers over n=%d (budgets 1..%d)\n", hist.Domain(), B)
	printCosts("histogram/SSE before", hist)
	printCosts("wavelet/SAE   before", wave)

	// A new shipment of readings arrives: eight items around frequency 12.
	batch := make([]probsyn.ItemPDF, 8)
	for i := range batch {
		batch[i] = level(12)
	}
	for _, live := range []probsyn.Maintainer{hist, wave} {
		if err := live.Append(batch); err != nil {
			log.Fatal(err)
		}
	}
	// And item 4's reading is corrected in place: the expected value is
	// preserved exactly (0.25·7 + 0.25·9 = 0.5·8 = 4), only the spread
	// changes — for the wavelet DP this is the mean-preserving case that
	// repairs only the dirty root-to-leaf path instead of resweeping.
	corrected := probsyn.ItemPDF{Entries: []probsyn.FreqProb{{Freq: 7, Prob: 0.25}, {Freq: 9, Prob: 0.25}}}
	for _, live := range []probsyn.Maintainer{hist, wave} {
		if err := live.Update(4, corrected); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\nafter appending %d items and correcting item 4 (n=%d):\n", len(batch), hist.Domain())
	printCosts("histogram/SSE after ", hist)
	printCosts("wavelet/SAE   after ", wave)

	// The frontiers answer queries immediately — no rebuild happened.
	syn, err := hist.Synopsis(B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhistogram estimate for appended item %d: %.2f (true mean 12)\n",
		hist.Domain()-1, syn.Estimate(hist.Domain()-1))
}

func printCosts(tag string, fr probsyn.Maintainer) {
	fmt.Printf("%s:", tag)
	for b := 1; b <= fr.Bmax(); b++ {
		fmt.Printf(" b=%d:%.3g", b, fr.Cost(b))
	}
	fmt.Println()
}
