// Sensors: summarize a grid of noisy sensors (value pdf model) and show why
// optimizing the probabilistic objective beats summarizing a single sampled
// snapshot — the paper's §5 comparison on a realistic workload.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probsyn"
	"probsyn/internal/eval"
	"probsyn/internal/gen"
	"probsyn/internal/metric"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const n = 512
	readings := gen.SensorGrid(rng, gen.DefaultSensor(n))
	fmt.Printf("sensor grid: %d sensors, %d (value, probability) pairs\n", readings.Domain(), readings.M())

	// Summarize with 24 buckets under expected sum-absolute error, with
	// the paper's three construction strategies.
	exp := &eval.HistogramExperiment{
		Source:  readings,
		Metric:  metric.SAE,
		Params:  metric.Params{C: 0.5},
		Budgets: []int{4, 8, 16, 24, 48},
		Samples: 3,
		Rng:     rng,
	}
	series, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpected sum-absolute error by construction method:")
	fmt.Printf("%-16s", "buckets")
	for _, pt := range series[0].Points {
		fmt.Printf("%10d", pt.B)
	}
	fmt.Println()
	for _, s := range series {
		name := s.Method.String()
		if s.Method == eval.SampledWorld {
			name = fmt.Sprintf("%s %d", name, s.Sample+1)
		}
		fmt.Printf("%-16s", name)
		for _, pt := range s.Points {
			fmt.Printf("%10.2f", pt.Cost)
		}
		fmt.Println()
	}

	// Use the optimal histogram to answer monitoring queries.
	h, err := probsyn.OptimalHistogram(readings, probsyn.SAE, probsyn.Params{C: 0.5}, 24)
	if err != nil {
		log.Fatal(err)
	}
	exact := readings.ExpectedFreqs()
	fmt.Println("\nregion monitoring (expected total reading per region):")
	for _, q := range [][2]int{{0, 127}, {128, 255}, {256, 383}, {384, 511}} {
		truth := 0.0
		for i := q[0]; i <= q[1]; i++ {
			truth += exact[i]
		}
		est := h.RangeSum(q[0], q[1])
		fmt.Printf("sensors [%3d..%3d]: exact %8.1f  histogram %8.1f  (%+.2f%%)\n",
			q[0], q[1], truth, est, 100*(est-truth)/truth)
	}
}
