// Workload: the two extensions beyond the paper's core results — a
// query-workload-weighted histogram (§6 poses non-uniform point-query
// workloads as future work) and the unrestricted wavelet thresholding of
// §4.2 (retained values optimized over quantized ranges rather than pinned
// to expected coefficients).
//
// Run with: go run ./examples/workload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probsyn"
	"probsyn/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	const n = 256
	readings := gen.SensorGrid(rng, gen.DefaultSensor(n))

	// A workload that hammers one hot region: 90% of point queries hit
	// sensors 32..63, the rest spread uniformly.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 0.1 / float64(n)
	}
	for i := 32; i < 64; i++ {
		weights[i] += 0.9 / 32
	}

	// Both histograms go through the unified Build entry point; the
	// workload objective is just an option, and the DP runs on every CPU
	// (the parallel schedule is deterministic, so the result is identical
	// to a single-threaded build).
	const B = 12
	uniformSyn, err := probsyn.Build(readings, probsyn.SSEFixed, B,
		probsyn.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	uniform := uniformSyn.(*probsyn.Histogram)
	weightedSyn, err := probsyn.Build(readings, probsyn.SSEFixed, B,
		probsyn.WithWorkloadWeights(weights), probsyn.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	weighted := weightedSyn.(*probsyn.Histogram)

	bucketsIn := func(h *probsyn.Histogram, lo, hi int) int {
		c := 0
		for _, b := range h.Buckets {
			if b.Start >= lo && b.Start <= hi {
				c++
			}
		}
		return c
	}
	fmt.Printf("%d-bucket histograms over %d sensors; hot region = sensors [32..63]\n", B, n)
	fmt.Printf("uniform objective:  %2d bucket boundaries inside the hot region\n",
		bucketsIn(uniform, 32, 63))
	fmt.Printf("workload objective: %2d bucket boundaries inside the hot region\n",
		bucketsIn(weighted, 32, 63))

	// Compare expected weighted squared error of the two bucketings.
	score := func(h *probsyn.Histogram) float64 {
		exact := readings.ExpectedFreqs()
		total := 0.0
		for i, w := range weights {
			d := exact[i] - h.Estimate(i)
			total += w * d * d
		}
		return total
	}
	fmt.Printf("\nworkload-weighted squared error (on expected frequencies):\n")
	fmt.Printf("uniform objective:  %.4f\n", score(uniform))
	fmt.Printf("workload objective: %.4f\n", score(weighted))

	// Unrestricted vs restricted wavelets under SAE on a small slice.
	slice := &probsyn.ValuePDF{N: 16, Items: readings.Items[:16]}
	_, restricted, err := probsyn.RestrictedWavelet(slice, probsyn.SAE, probsyn.Params{C: 0.5}, 3)
	if err != nil {
		log.Fatal(err)
	}
	_, unrestricted, err := probsyn.UnrestrictedWavelet(slice, probsyn.SAE, probsyn.Params{C: 0.5}, 3, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3-term SAE wavelet over 16 sensors:\n")
	fmt.Printf("restricted (values = expected coefficients): expected error %.4f\n", restricted)
	fmt.Printf("unrestricted (values over quantized ranges):  expected error %.4f\n", unrestricted)
}
