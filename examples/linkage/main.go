// Linkage: summarize record-linkage output (basic model — the paper's
// MystiQ workload) with relative-error histograms and wavelets, the
// synopses a probabilistic query optimizer would consult.
//
// Run with: go run ./examples/linkage
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probsyn"
	"probsyn/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(2009))
	const n = 1024
	links := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	fmt.Printf("linkage table: %d entities, %d candidate-match tuples\n", links.Domain(), len(links.Tuples))

	// Histogram under sum-squared relative error (the metric the paper
	// leads with): c = 0.5 protects low-frequency entities.
	const B = 48
	h, err := probsyn.OptimalHistogram(links, probsyn.SSRE, probsyn.Params{C: 0.5}, B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal %d-bucket SSRE histogram: expected error %.4f\n", B, h.Cost)
	fmt.Println("widest and narrowest buckets:")
	widest, narrowest := h.Buckets[0], h.Buckets[0]
	for _, b := range h.Buckets {
		if b.Width() > widest.Width() {
			widest = b
		}
		if b.Width() < narrowest.Width() {
			narrowest = b
		}
	}
	fmt.Printf("  widest    [%4d..%4d] (%d items) ≈ %.3f expected matches\n",
		widest.Start, widest.End, widest.Width(), widest.Rep)
	fmt.Printf("  narrowest [%4d..%4d] (%d items) ≈ %.3f expected matches\n",
		narrowest.Start, narrowest.End, narrowest.Width(), narrowest.Rep)

	// The (1+eps)-approximate construction (Theorem 5) trades a bounded
	// cost increase for a faster build.
	apx, err := probsyn.ApproxHistogram(links, probsyn.SSRE, probsyn.Params{C: 0.5}, B, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(1+0.25)-approximate histogram: expected error %.4f (%.2fx optimal)\n",
		apx.Cost, apx.Cost/h.Cost)

	// Equi-depth over expected matches — the classic heuristic — for
	// contrast.
	ed, err := probsyn.EquiDepthHistogram(links, probsyn.SSRE, probsyn.Params{C: 0.5}, B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equi-depth heuristic:            expected error %.4f (%.2fx optimal)\n",
		ed.Cost, ed.Cost/h.Cost)

	// Wavelets: the SSE-optimal synopsis and a restricted SAE synopsis.
	syn, rep, err := probsyn.SSEWavelet(links, B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d-term SSE wavelet: captures %.2f%% of reducible energy\n",
		syn.B(), 100-rep.ErrorPercent())
	// The restricted DP runs on the shared execution engine: with
	// WithParallelism its level sweeps use every core, and the synopsis is
	// bit-identical to a serial build.
	rs, err := probsyn.Build(links, probsyn.SAE, 12,
		probsyn.WithParams(probsyn.Params{C: 0.5}),
		probsyn.WithWavelet(), probsyn.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	rsyn := rs.(*probsyn.WaveletSynopsis)
	fmt.Printf("12-term restricted SAE wavelet: expected error %.2f, retained indices %v\n",
		rsyn.Cost, rsyn.Indices)
}
