// Quickstart: build histogram and wavelet synopses over a small uncertain
// relation in the value pdf model, and compare them against the exact
// expected frequencies.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"probsyn"
)

func main() {
	// A 16-item relation where each item's frequency is uncertain: items
	// 0-7 hover around 10, items 8-11 around 2, items 12-15 around 25.
	vp := &probsyn.ValuePDF{N: 16, Items: make([]probsyn.ItemPDF, 16)}
	level := func(base float64) probsyn.ItemPDF {
		return probsyn.ItemPDF{Entries: []probsyn.FreqProb{
			{Freq: base - 1, Prob: 0.25},
			{Freq: base, Prob: 0.5},
			{Freq: base + 1, Prob: 0.2},
			// remaining 0.05: the reading is missing (frequency 0)
		}}
	}
	for i := 0; i < 16; i++ {
		switch {
		case i < 8:
			vp.Items[i] = level(10)
		case i < 12:
			vp.Items[i] = level(2)
		default:
			vp.Items[i] = level(25)
		}
	}
	if err := vp.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== expected frequencies ==")
	for i, e := range vp.ExpectedFreqs() {
		fmt.Printf("item %2d: E[g] = %.2f\n", i, e)
	}

	// A 3-bucket histogram minimizing expected sum-squared error (the
	// paper's Eq. 5 objective).
	h, err := probsyn.OptimalHistogram(vp, probsyn.SSE, probsyn.DefaultParams(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== optimal 3-bucket SSE histogram (expected error %.3f) ==\n", h.Cost)
	for _, b := range h.Buckets {
		fmt.Printf("items [%2d..%2d] ≈ %6.2f  (bucket cost %.3f)\n", b.Start, b.End, b.Rep, b.Cost)
	}

	// The same budget under a relative-error objective can bucket
	// differently: small frequencies matter more.
	hr, err := probsyn.OptimalHistogram(vp, probsyn.SARE, probsyn.Params{C: 0.5}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== optimal 3-bucket SARE histogram (expected error %.3f) ==\n", hr.Cost)
	for _, b := range hr.Buckets {
		fmt.Printf("items [%2d..%2d] ≈ %6.2f\n", b.Start, b.End, b.Rep)
	}

	// A 4-coefficient wavelet synopsis under expected SSE (Theorem 7).
	syn, rep, err := probsyn.SSEWavelet(vp, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== 4-term SSE wavelet synopsis ==\n")
	fmt.Printf("expected SSE %.3f (irreducible variance %.3f, dropped energy %.2f%%)\n",
		rep.ExpectedSSE, rep.VarianceFloor, rep.ErrorPercent())
	for i := 0; i < 16; i++ {
		fmt.Printf("item %2d: wavelet estimate %6.2f, histogram estimate %6.2f\n",
			i, syn.Estimate(i), h.Estimate(i))
	}

	// Both families share one Synopsis interface, so they can be queried,
	// serialized, and reloaded uniformly. The binary codec round-trips a
	// synopsis exactly; a saved file can be reloaded without knowing which
	// family produced it.
	fmt.Printf("\n== shared synopsis layer ==\n")
	for _, s := range []probsyn.Synopsis{h, syn} {
		blob, err := probsyn.MarshalSynopsis(s)
		if err != nil {
			log.Fatal(err)
		}
		back, err := probsyn.UnmarshalSynopsis(blob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%T: %d terms, expected error %.3f, %d bytes on the wire, "+
			"range-sum[0..15] %.2f == %.2f after reload\n",
			s, s.Terms(), s.ErrorCost(), len(blob), s.RangeSum(0, 15), back.RangeSum(0, 15))
	}
}
